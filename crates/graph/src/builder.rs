//! Mutable construction of [`Graph`] values.

use crate::graph::{Graph, GraphError, VertexId};

/// Accumulates vertices, labels, and edges, then freezes into a CSR
/// [`Graph`].
///
/// Duplicate edges are tolerated (deduplicated at [`GraphBuilder::build`]),
/// self-loops are rejected, and unlabeled vertices default to label `0`
/// (callers that need the paper's "use degrees as labels" fallback apply it
/// explicitly; see `deepmap-datasets`).
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n_vertices: usize,
    labels: Vec<u32>,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n_vertices` vertices, all labeled 0.
    pub fn new(n_vertices: usize) -> Self {
        GraphBuilder {
            n_vertices,
            labels: vec![0; n_vertices],
            edges: Vec::new(),
        }
    }

    /// Pre-allocates space for `n_edges` edges.
    pub fn with_edge_capacity(mut self, n_edges: usize) -> Self {
        self.edges.reserve(n_edges);
        self
    }

    /// Number of vertices the built graph will have.
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    /// [`GraphError::SelfLoop`] when `u == v`;
    /// [`GraphError::VertexOutOfRange`] when an endpoint is `>= n_vertices`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        for &w in &[u, v] {
            if w as usize >= self.n_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: w,
                    n_vertices: self.n_vertices,
                });
            }
        }
        self.edges.push((u, v));
        Ok(())
    }

    /// Adds `{u, v}` assuming the endpoints are valid and distinct.
    ///
    /// Used on hot internal paths (induced subgraphs, generators) where the
    /// caller has already validated the ids.
    #[inline]
    pub fn add_edge_unchecked(&mut self, u: VertexId, v: VertexId) {
        debug_assert!(u != v);
        debug_assert!((u as usize) < self.n_vertices && (v as usize) < self.n_vertices);
        self.edges.push((u, v));
    }

    /// Sets the label of one vertex.
    ///
    /// # Errors
    /// [`GraphError::VertexOutOfRange`] when `v >= n_vertices`.
    pub fn set_label(&mut self, v: VertexId, label: u32) -> Result<(), GraphError> {
        if v as usize >= self.n_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                n_vertices: self.n_vertices,
            });
        }
        self.labels[v as usize] = label;
        Ok(())
    }

    /// Sets all labels at once.
    ///
    /// # Errors
    /// [`GraphError::LabelCountMismatch`] when `labels.len() != n_vertices`.
    pub fn set_labels(&mut self, labels: &[u32]) -> Result<(), GraphError> {
        if labels.len() != self.n_vertices {
            return Err(GraphError::LabelCountMismatch {
                labels: labels.len(),
                n_vertices: self.n_vertices,
            });
        }
        self.labels.copy_from_slice(labels);
        Ok(())
    }

    /// Freezes the builder into an immutable CSR [`Graph`].
    ///
    /// Duplicate edges collapse to one; neighbour lists come out sorted.
    ///
    /// # Errors
    /// Currently infallible for inputs accepted by `add_edge`, but returns
    /// `Result` so future validation (e.g. connectivity requirements) stays
    /// non-breaking.
    pub fn build(self) -> Result<Graph, GraphError> {
        let n = self.n_vertices;
        // Count directed degrees (each undirected edge contributes twice).
        let mut adjacency: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for &(u, v) in &self.edges {
            adjacency[u as usize].push(v);
            adjacency[v as usize].push(u);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(self.edges.len() * 2);
        offsets.push(0u32);
        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len() as u32);
        }
        Ok(Graph::from_csr(offsets, neighbors, self.labels))
    }
}

/// Convenience constructor: builds a labeled graph from an edge list.
///
/// # Errors
/// Propagates the first [`GraphError`] from edge insertion or labeling.
pub fn graph_from_edges(
    n_vertices: usize,
    edges: &[(VertexId, VertexId)],
    labels: Option<&[u32]>,
) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(n_vertices).with_edge_capacity(edges.len());
    for &(u, v) in edges {
        b.add_edge(u, v)?;
    }
    if let Some(labels) = labels {
        b.set_labels(labels)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(b.add_edge(1, 1), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(3);
        assert!(matches!(
            b.add_edge(0, 3),
            Err(GraphError::VertexOutOfRange { vertex: 3, .. })
        ));
        assert!(b.set_label(5, 1).is_err());
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap();
        b.add_edge(0, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn from_edges_helper() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)], Some(&[5, 6, 7])).unwrap();
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.labels(), &[5, 6, 7]);
        assert!(graph_from_edges(2, &[(0, 1)], Some(&[1])).is_err());
    }

    #[test]
    fn default_labels_are_zero() {
        let g = GraphBuilder::new(3).build().unwrap();
        assert_eq!(g.labels(), &[0, 0, 0]);
    }
}
