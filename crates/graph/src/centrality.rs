//! Vertex centrality measures.
//!
//! DeepMap aligns vertices across graphs by sorting them on **eigenvector
//! centrality** (paper §4.1, citing Bonacich 1987): a vertex is important if
//! it is linked to by other important vertices. We compute it with power
//! iteration on the adjacency matrix, exactly as the paper's Algorithm 1
//! (line 11, `O(e)` per iteration).
//!
//! Degree centrality is included for the ordering ablation benchmarks.

use crate::graph::{Graph, VertexId};

/// Options for the power iteration.
#[derive(Debug, Clone, Copy)]
pub struct PowerIterationOptions {
    /// Maximum number of iterations before giving up on convergence.
    pub max_iterations: usize,
    /// L1 change threshold that counts as converged.
    pub tolerance: f64,
}

impl Default for PowerIterationOptions {
    fn default() -> Self {
        PowerIterationOptions {
            max_iterations: 100,
            tolerance: 1e-8,
        }
    }
}

/// Eigenvector centrality of every vertex, by power iteration.
///
/// The vector is L2-normalised and non-negative. Isolated vertices converge
/// to centrality 0. For the empty graph an empty vector is returned.
///
/// Convergence notes: on bipartite graphs (stars, paths, molecule rings)
/// power iteration on `A` oscillates between the two sides, so — like
/// NetworkX, which the original DeepMap code calls — we iterate on the
/// shifted matrix `A + I`. The shift leaves the eigenvectors unchanged but
/// makes the top eigenvalue strictly dominant in magnitude, guaranteeing
/// convergence to the Perron vector on every connected component.
pub fn eigenvector_centrality(graph: &Graph, options: PowerIterationOptions) -> Vec<f64> {
    let n = graph.n_vertices();
    if n == 0 {
        return Vec::new();
    }
    if graph.n_edges() == 0 {
        // Every vertex is isolated; the limit assigns them all zero weight.
        return vec![0.0; n];
    }
    let mut x = vec![1.0 / (n as f64).sqrt(); n];
    let mut next = vec![0.0; n];
    for _ in 0..options.max_iterations {
        // next = (A + I) x  (adjacency is symmetric; the +I shift defeats
        // bipartite oscillation).
        next.copy_from_slice(&x);
        for u in graph.vertices() {
            let xu = x[u as usize];
            for &v in graph.neighbors(u) {
                next[v as usize] += xu;
            }
        }
        let norm = next.iter().map(|v| v * v).sum::<f64>().sqrt();
        debug_assert!(norm > 0.0, "norm stays positive once edges exist");
        let mut delta = 0.0;
        for (xi, ni) in x.iter_mut().zip(next.iter()) {
            let scaled = ni / norm;
            delta += (scaled - *xi).abs();
            *xi = scaled;
        }
        if delta < options.tolerance {
            break;
        }
    }
    x
}

/// Degree centrality: `deg(v) / (n - 1)` (0 when `n <= 1`).
pub fn degree_centrality(graph: &Graph) -> Vec<f64> {
    let n = graph.n_vertices();
    if n <= 1 {
        return vec![0.0; n];
    }
    let denom = (n - 1) as f64;
    graph
        .vertices()
        .map(|v| graph.degree(v) as f64 / denom)
        .collect()
}

/// Sorts vertex ids descending by `score`, breaking score ties by vertex
/// label and then ascending id so the order is total and deterministic.
///
/// This produces the paper's "vertex sequence" (Algorithm 1, line 11).
pub fn rank_by_score_desc(graph: &Graph, score: &[f64]) -> Vec<VertexId> {
    assert_eq!(score.len(), graph.n_vertices());
    let mut order: Vec<VertexId> = graph.vertices().collect();
    order.sort_by(|&a, &b| {
        score[b as usize]
            .partial_cmp(&score[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| graph.label(a).cmp(&graph.label(b)))
            .then_with(|| a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    /// Star graph: center 0 connected to 1..=4.
    fn star5() -> Graph {
        graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)], None).unwrap()
    }

    #[test]
    fn star_center_has_highest_centrality() {
        let g = star5();
        let c = eigenvector_centrality(&g, PowerIterationOptions::default());
        for leaf in 1..5 {
            assert!(c[0] > c[leaf], "center should dominate leaf {leaf}");
        }
        // Leaves are symmetric.
        for leaf in 2..5 {
            assert!((c[1] - c[leaf]).abs() < 1e-6);
        }
    }

    #[test]
    fn centrality_is_normalised() {
        let g = star5();
        let c = eigenvector_centrality(&g, PowerIterationOptions::default());
        let norm: f64 = c.iter().map(|v| v * v).sum::<f64>();
        assert!((norm - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cycle_vertices_equal() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], None).unwrap();
        let c = eigenvector_centrality(&g, PowerIterationOptions::default());
        for v in 1..4 {
            assert!((c[0] - c[v]).abs() < 1e-6);
        }
    }

    #[test]
    fn edgeless_graph_zero_centrality() {
        let g = graph_from_edges(3, &[], None).unwrap();
        let c = eigenvector_centrality(&g, PowerIterationOptions::default());
        assert_eq!(c, vec![0.0; 3]);
    }

    #[test]
    fn empty_graph() {
        let g = graph_from_edges(0, &[], None).unwrap();
        assert!(eigenvector_centrality(&g, PowerIterationOptions::default()).is_empty());
        assert!(degree_centrality(&g).is_empty());
    }

    #[test]
    fn degree_centrality_star() {
        let g = star5();
        let c = degree_centrality(&g);
        assert!((c[0] - 1.0).abs() < 1e-12);
        assert!((c[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ranking_is_deterministic_under_ties() {
        // Path 0-1-2: endpoints tie; ids break the tie.
        let g = graph_from_edges(3, &[(0, 1), (1, 2)], None).unwrap();
        let c = eigenvector_centrality(&g, PowerIterationOptions::default());
        let order = rank_by_score_desc(&g, &c);
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn ranking_breaks_ties_by_label() {
        // Edgeless graph, all scores 0; labels decide, then ids.
        let g = graph_from_edges(3, &[], Some(&[5, 2, 2])).unwrap();
        let order = rank_by_score_desc(&g, &[0.0, 0.0, 0.0]);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn star_ranking_puts_center_first() {
        let g = star5();
        let c = eigenvector_centrality(&g, PowerIterationOptions::default());
        let order = rank_by_score_desc(&g, &c);
        assert_eq!(order[0], 0);
    }
}
