//! All-pairs shortest paths.
//!
//! The shortest-path kernel (paper §3, Eq. 3) needs the length of the
//! shortest path between every vertex pair. For the unweighted graphs of the
//! benchmarks, one BFS per source — [`apsp_bfs`] — is `O(|V|·(|V|+|E|))` and
//! is what the pipeline uses. [`apsp_floyd_warshall`] implements the
//! `O(|V|^3)` classic the paper cites for its complexity analysis; the test
//! suite cross-checks the two.

use crate::bfs::{bfs_distances, UNREACHABLE};
use crate::graph::Graph;

/// Dense all-pairs shortest-path matrix.
///
/// `dist(u, v)` is the hop distance, or [`UNREACHABLE`] when `v` cannot be
/// reached from `u`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<u32>,
}

impl DistanceMatrix {
    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance from `u` to `v`.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    #[inline]
    pub fn dist(&self, u: usize, v: usize) -> u32 {
        assert!(u < self.n && v < self.n);
        self.dist[u * self.n + v]
    }

    /// Row of distances from `u`.
    #[inline]
    pub fn row(&self, u: usize) -> &[u32] {
        &self.dist[u * self.n..(u + 1) * self.n]
    }

    /// Largest finite distance in the matrix (the graph diameter when
    /// connected; 0 for empty graphs).
    pub fn diameter(&self) -> u32 {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }
}

/// All-pairs shortest paths by one BFS per source. `O(|V|·(|V|+|E|))`.
pub fn apsp_bfs(graph: &Graph) -> DistanceMatrix {
    let n = graph.n_vertices();
    let mut dist = Vec::with_capacity(n * n);
    for v in graph.vertices() {
        dist.extend(bfs_distances(graph, v));
    }
    DistanceMatrix { n, dist }
}

/// All-pairs shortest paths by Floyd–Warshall. `O(|V|^3)`.
///
/// Kept as the reference implementation the paper cites; saturating
/// arithmetic handles the `UNREACHABLE` sentinel.
pub fn apsp_floyd_warshall(graph: &Graph) -> DistanceMatrix {
    let n = graph.n_vertices();
    let mut dist = vec![UNREACHABLE; n * n];
    for v in 0..n {
        dist[v * n + v] = 0;
    }
    for (u, v) in graph.edges() {
        dist[u as usize * n + v as usize] = 1;
        dist[v as usize * n + u as usize] = 1;
    }
    for k in 0..n {
        for i in 0..n {
            let dik = dist[i * n + k];
            if dik == UNREACHABLE {
                continue;
            }
            for j in 0..n {
                let dkj = dist[k * n + j];
                if dkj == UNREACHABLE {
                    continue;
                }
                let through = dik + dkj;
                if through < dist[i * n + j] {
                    dist[i * n + j] = through;
                }
            }
        }
    }
    DistanceMatrix { n, dist }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::generators::{erdos_renyi, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_distances() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)], None).unwrap();
        let d = apsp_bfs(&g);
        assert_eq!(d.dist(0, 3), 3);
        assert_eq!(d.dist(3, 0), 3);
        assert_eq!(d.dist(1, 1), 0);
        assert_eq!(d.diameter(), 3);
    }

    #[test]
    fn disconnected_is_unreachable() {
        let g = graph_from_edges(3, &[(0, 1)], None).unwrap();
        let d = apsp_bfs(&g);
        assert_eq!(d.dist(0, 2), UNREACHABLE);
        assert_eq!(d.diameter(), 1);
    }

    #[test]
    fn floyd_warshall_matches_bfs_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 5, 12, 25] {
            for p in [0.05, 0.2, 0.5] {
                let g = erdos_renyi(&GeneratorConfig::new(n).edge_probability(p), &mut rng);
                assert_eq!(apsp_bfs(&g), apsp_floyd_warshall(&g), "n={n} p={p}");
            }
        }
    }

    #[test]
    fn empty_graph_diameter_zero() {
        let g = graph_from_edges(0, &[], None).unwrap();
        let d = apsp_bfs(&g);
        assert_eq!(d.n(), 0);
        assert_eq!(d.diameter(), 0);
    }

    #[test]
    fn row_access() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)], None).unwrap();
        let d = apsp_bfs(&g);
        assert_eq!(d.row(0), &[0, 1, 2]);
    }
}
