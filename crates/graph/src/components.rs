//! Connected components.
//!
//! The graphlet sampler restricts itself to connected induced subgraphs, and
//! the synthetic dataset generators use component information to validate
//! their outputs, so a plain union-find based component labelling lives here.

use crate::graph::{Graph, VertexId};

/// Disjoint-set forest with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        true
    }
}

/// Component labelling of a graph.
#[derive(Debug, Clone)]
pub struct Components {
    /// `component[v]` is the 0-based component index of vertex `v`.
    pub component: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Vertices of each component, grouped.
    pub fn groups(&self) -> Vec<Vec<VertexId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (v, &c) in self.component.iter().enumerate() {
            groups[c as usize].push(v as VertexId);
        }
        groups
    }

    /// Size of the largest component (0 for the empty graph).
    pub fn largest_size(&self) -> usize {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.component {
            sizes[c as usize] += 1;
        }
        sizes.into_iter().max().unwrap_or(0)
    }
}

/// Labels connected components with consecutive indices in order of first
/// appearance (so vertex 0 is always in component 0 when the graph is
/// non-empty).
pub fn connected_components(graph: &Graph) -> Components {
    let n = graph.n_vertices();
    let mut uf = UnionFind::new(n);
    for (u, v) in graph.edges() {
        uf.union(u, v);
    }
    let mut component = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        let root = uf.find(v);
        if component[root as usize] == u32::MAX {
            component[root as usize] = next;
            next += 1;
        }
        component[v as usize] = component[root as usize];
    }
    Components {
        component,
        count: next as usize,
    }
}

/// `true` when the graph is connected (vacuously true for `n <= 1`).
pub fn is_connected(graph: &Graph) -> bool {
    graph.n_vertices() <= 1 || connected_components(graph).count == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn two_components() {
        let g = graph_from_edges(5, &[(0, 1), (2, 3)], None).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.component[0], c.component[1]);
        assert_eq!(c.component[2], c.component[3]);
        assert_ne!(c.component[0], c.component[2]);
        assert_ne!(c.component[4], c.component[0]);
        assert_eq!(c.largest_size(), 2);
        assert!(!is_connected(&g));
    }

    #[test]
    fn connected_path() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)], None).unwrap();
        assert!(is_connected(&g));
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert_eq!(c.groups(), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = graph_from_edges(0, &[], None).unwrap();
        assert!(is_connected(&empty));
        assert_eq!(connected_components(&empty).count, 0);
        assert_eq!(connected_components(&empty).largest_size(), 0);

        let single = graph_from_edges(1, &[], None).unwrap();
        assert!(is_connected(&single));
        assert_eq!(connected_components(&single).count, 1);
    }

    #[test]
    fn union_find_idempotent() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.find(1), uf.find(2));
    }

    #[test]
    fn component_indices_in_first_appearance_order() {
        let g = graph_from_edges(4, &[(2, 3)], None).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.component, vec![0, 1, 2, 2]);
    }
}
