//! Property-based tests for the NN substrate's algebra and layers.

use deepmap_nn::layers::{Conv1D, Dense, Layer, Mode, ReLU, SumPool, Tanh};
use deepmap_nn::loss::{softmax, softmax_cross_entropy};
use deepmap_nn::matrix::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-3.0f32..3.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// A matrix with *fixed* dimensions, for shape-dependent identities.
fn matrix_of(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Dimension triple plus conforming matrices for transpose identities.
fn transpose_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..6, 1usize..6, 1usize..6)
        .prop_flat_map(|(shared, ca, cb)| (matrix_of(shared, ca), matrix_of(shared, cb)))
}

/// A dimension that is usually one of the listed edge values and otherwise
/// a random fallback — lets shape strategies hit exact boundaries (0, 1,
/// lane widths, block sizes) far more often than uniform sampling would.
fn edge_dim(edges: &'static [usize], max: usize) -> impl Strategy<Value = usize> {
    (0..edges.len() * 2, 1..max).prop_map(move |(pick, fallback)| {
        if pick < edges.len() {
            edges[pick]
        } else {
            fallback
        }
    })
}

/// Operand pairs for one matrix product, biased toward degenerate shapes:
/// row vectors (m = 1), column vectors (n = 1), empty contraction (k = 0),
/// and dims straddling the kernels' 8-lane unroll and 32/64/128 tiles.
fn degenerate_product() -> impl Strategy<Value = (Matrix, Matrix)> {
    (
        edge_dim(&[1, 2, 31, 32, 33], 12),
        edge_dim(&[0, 1, 3, 4, 5, 7, 8, 9, 63, 64, 65], 90),
        edge_dim(&[1, 2, 7, 8, 9, 127, 128, 129], 40),
    )
        .prop_flat_map(|(m, k, n)| (matrix_of(m, k), matrix_of(k, n)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fused transpose matmuls agree with the explicit transpose.
    #[test]
    fn fused_transpose_matmuls((a, b) in transpose_pair()) {
        prop_assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_identity((at, bt) in transpose_pair()) {
        // Shared dimension is now the *column* count after transposing.
        let a = at.transpose();
        let b = bt.transpose();
        prop_assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    /// All three blocked/unrolled matmul kernels stay bit-identical to the
    /// naive ascending-k reference on degenerate and tile-straddling
    /// shapes, so every ragged vector/block tail path is exercised.
    #[test]
    fn kernel_edge_shapes_match_reference((a, b) in degenerate_product()) {
        let reference = a.matmul_reference(&b);
        prop_assert_eq!(a.matmul(&b), reference.clone());
        prop_assert_eq!(a.transpose().t_matmul(&b), reference.clone());
        prop_assert_eq!(a.matmul_t(&b.transpose()), reference);
    }

    /// The int8 path's per-output error obeys the analytic bound
    /// `k · s_act · s_w · 127.5` on random (including degenerate) shapes.
    #[test]
    fn qmatmul_error_bound_holds((a, b) in degenerate_product()) {
        let q = deepmap_nn::quant::QuantizedMatrix::quantize(&b).unwrap();
        let exact = a.matmul_reference(&b);
        let approx = deepmap_nn::quant::qmatmul(&a, &q);
        let k = a.cols() as f32;
        for i in 0..a.rows() {
            let s_act = a.row(i).iter().fold(0.0f32, |m, &v| m.max(v.abs())) / 127.0;
            for j in 0..b.cols() {
                let bound = k * s_act * q.scales()[j] * 127.5 + 1e-4;
                let err = (exact.get(i, j) - approx.get(i, j)).abs();
                prop_assert!(err <= bound, "({}, {}): err {} > bound {}", i, j, err, bound);
            }
        }
    }

    /// Matmul distributes over addition: A(B + C) = AB + AC (up to f32).
    #[test]
    fn matmul_distributes(a in matrix_of(4, 4), b in matrix_of(4, 3), c in matrix_of(4, 3)) {
        let mut bc = b.clone();
        bc.add_assign(&c);
        let left = a.matmul(&bc);
        let mut right = a.matmul(&b);
        right.add_assign(&a.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Softmax is a probability distribution and is invariant to constant
    /// logit shifts.
    #[test]
    fn softmax_properties(logits in proptest::collection::vec(-10.0f32..10.0, 2..8), shift in -5.0f32..5.0) {
        let p1 = softmax(&Matrix::row_vector(logits.clone()));
        let total: f32 = p1.as_slice().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-5);
        prop_assert!(p1.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let shifted: Vec<f32> = logits.iter().map(|&v| v + shift).collect();
        let p2 = softmax(&Matrix::row_vector(shifted));
        for (a, b) in p1.as_slice().iter().zip(p2.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// Cross-entropy loss is non-negative and its gradient sums to zero.
    #[test]
    fn cross_entropy_properties(logits in proptest::collection::vec(-5.0f32..5.0, 2..6), target_raw in 0usize..6) {
        let target = target_raw % logits.len();
        let (loss, grad) = softmax_cross_entropy(&Matrix::row_vector(logits), target);
        prop_assert!(loss >= -1e-6);
        let sum: f32 = grad.as_slice().iter().sum();
        prop_assert!(sum.abs() < 1e-5);
        // The target component of the gradient is non-positive.
        prop_assert!(grad.get(0, target) <= 1e-6);
    }

    /// ReLU and Tanh keep shapes and bound outputs as advertised.
    #[test]
    fn activation_bounds(x in arb_matrix(5, 5)) {
        let mut relu = ReLU::new();
        let y = relu.forward(&x, Mode::Eval);
        prop_assert_eq!(y.shape(), x.shape());
        prop_assert!(y.as_slice().iter().all(|&v| v >= 0.0));
        let mut tanh = Tanh::new();
        let z = tanh.forward(&x, Mode::Eval);
        prop_assert!(z.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    /// Conv1D output length follows the floor formula for every geometry.
    #[test]
    fn conv_output_length(len in 1usize..30, kernel in 1usize..6, stride in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv1D::new(2, 3, kernel, stride, &mut rng);
        let expected = if len < kernel { 0 } else { (len - kernel) / stride + 1 };
        prop_assert_eq!(conv.output_len(len), expected);
    }

    /// Dense layers are affine: f(x + y) - f(x) - f(y) + f(0) = 0.
    #[test]
    fn dense_is_affine(x in matrix_of(1, 4), y in matrix_of(1, 4)) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut dense = Dense::new(4, 3, &mut rng);
        let mut xy = x.clone();
        xy.add_assign(&y);
        let fxy = dense.forward(&xy, Mode::Eval);
        let fx = dense.forward(&x, Mode::Eval);
        let fy = dense.forward(&y, Mode::Eval);
        let f0 = dense.forward(&Matrix::zeros(1, 4), Mode::Eval);
        for i in 0..3 {
            let residual = fxy.get(0, i) - fx.get(0, i) - fy.get(0, i) + f0.get(0, i);
            prop_assert!(residual.abs() < 1e-4, "residual {residual}");
        }
    }

    /// SumPool commutes with row permutation (the invariance Theorem 1
    /// rests on).
    #[test]
    fn sum_pool_permutation_invariant(x in arb_matrix(6, 4), seed in 0u64..50) {
        use rand::seq::SliceRandom;
        let mut pool = SumPool::new();
        let base = pool.forward(&x, Mode::Eval);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut shuffled = Matrix::zeros(x.rows(), x.cols());
        for (new_r, &old_r) in order.iter().enumerate() {
            shuffled.row_mut(new_r).copy_from_slice(x.row(old_r));
        }
        let permuted = pool.forward(&shuffled, Mode::Eval);
        for (a, b) in base.as_slice().iter().zip(permuted.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }
}
