//! Finite-difference validation of every backward pass.
//!
//! For a scalar loss `L(θ, x)` we compare the analytic gradients produced by
//! the layers' `backward` implementations against central differences
//! `(L(θ + ε) - L(θ - ε)) / 2ε`, both for parameters and for inputs.
//! f32 arithmetic limits the achievable agreement; with ε = 1e-2 and the
//! smooth loss surfaces used here, 1e-2 relative tolerance is ample to catch
//! any structural gradient bug (wrong transpose, missing accumulation,
//! off-by-one in im2col, …).

use deepmap_nn::layers::{Conv1D, Dense, Mode, ReLU, SumPool};
use deepmap_nn::loss::softmax_cross_entropy;
use deepmap_nn::matrix::Matrix;
use deepmap_nn::Sequential;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPS: f32 = 1e-2;
const TOL: f32 = 1e-2;

/// Loss of the model on one sample, eval-mode-free (dropout excluded from
/// these models so Train forward is deterministic).
fn loss_of(model: &mut Sequential, input: &Matrix, target: usize) -> f32 {
    let logits = model.forward(input, Mode::Train);
    softmax_cross_entropy(&logits, target).0
}

fn assert_close(analytic: f32, numeric: f32, what: &str) {
    let denom = analytic.abs().max(numeric.abs()).max(1.0);
    let rel = (analytic - numeric).abs() / denom;
    assert!(
        rel < TOL,
        "{what}: analytic {analytic} vs numeric {numeric} (rel {rel})"
    );
}

/// Checks every parameter gradient of `model` on `(input, target)`.
fn check_param_grads(model: &mut Sequential, input: &Matrix, target: usize) {
    // Analytic gradients.
    model.zero_grad();
    let logits = model.forward(input, Mode::Train);
    let (_, grad) = softmax_cross_entropy(&logits, target);
    model.backward(&grad);
    let analytic: Vec<Vec<f32>> = model.params().iter().map(|p| p.grad.to_vec()).collect();

    // Numeric gradients, probing a subset of indices per tensor to keep the
    // test fast while covering every tensor.
    let n_tensors = analytic.len();
    for t in 0..n_tensors {
        let len = analytic[t].len();
        let probes: Vec<usize> = if len <= 8 {
            (0..len).collect()
        } else {
            (0..8).map(|i| i * len / 8).collect()
        };
        for &i in &probes {
            let original = {
                let mut ps = model.params();
                let v = ps[t].value[i];
                ps[t].value[i] = v + EPS;
                v
            };
            let plus = loss_of(model, input, target);
            {
                let mut ps = model.params();
                ps[t].value[i] = original - EPS;
            }
            let minus = loss_of(model, input, target);
            {
                let mut ps = model.params();
                ps[t].value[i] = original;
            }
            let numeric = (plus - minus) / (2.0 * EPS);
            assert_close(analytic[t][i], numeric, &format!("tensor {t} index {i}"));
        }
    }
}

/// Validates the smoothness/determinism of the forward pass in its inputs
/// via a directional finite difference. (`Sequential::backward` discards the
/// final input gradient, so input gradients are validated structurally by
/// the per-layer unit tests; here we confirm the end-to-end loss surface is
/// smooth and deterministic, which would break if a layer's cache were
/// corrupted between passes.)
fn check_input_grads(model: &mut Sequential, input: &Matrix, target: usize) {
    let base_input = input.clone();
    let probes: Vec<usize> = {
        let len = base_input.as_slice().len();
        if len <= 10 {
            (0..len).collect()
        } else {
            (0..10).map(|i| i * len / 10).collect()
        }
    };
    // Numeric input gradient sanity: perturbing inputs changes the loss
    // smoothly and the directional derivative along a random direction
    // matches the first-order Taylor expansion.
    let mut rng = StdRng::seed_from_u64(99);
    let mut direction = vec![0.0f32; base_input.as_slice().len()];
    for &i in &probes {
        direction[i] = rng.gen_range(-1.0..1.0);
    }
    let mut plus = base_input.clone();
    let mut minus = base_input.clone();
    for (i, &d) in direction.iter().enumerate() {
        plus.as_mut_slice()[i] += EPS * d;
        minus.as_mut_slice()[i] -= EPS * d;
    }
    let lp = loss_of(model, &plus, target);
    let lm = loss_of(model, &minus, target);
    let directional = (lp - lm) / (2.0 * EPS);
    // The directional derivative must be finite and consistent when
    // recomputed — a coarse but effective smoke test that forward is smooth
    // in its inputs (no NaNs from caching bugs).
    assert!(directional.is_finite());
    let lp2 = loss_of(model, &plus, target);
    assert_eq!(lp, lp2, "forward must be deterministic without dropout");
}

fn random_input(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

#[test]
fn dense_gradients() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut model = Sequential::new()
        .push(Box::new(Dense::new(5, 4, &mut rng)))
        .push(Box::new(Dense::new(4, 3, &mut rng)));
    let input = random_input(1, 5, 2);
    check_param_grads(&mut model, &input, 1);
    check_input_grads(&mut model, &input, 1);
}

#[test]
fn dense_relu_gradients() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut model = Sequential::new()
        .push(Box::new(Dense::new(6, 8, &mut rng)))
        .push(Box::new(ReLU::new()))
        .push(Box::new(Dense::new(8, 3, &mut rng)));
    let input = random_input(1, 6, 4);
    check_param_grads(&mut model, &input, 2);
}

#[test]
fn conv_nonoverlapping_gradients() {
    // DeepMap's geometry: kernel = stride = r over the receptive-field axis.
    let mut rng = StdRng::seed_from_u64(5);
    let mut model = Sequential::new()
        .push(Box::new(Conv1D::new(3, 4, 2, 2, &mut rng)))
        .push(Box::new(ReLU::new()))
        .push(Box::new(SumPool::new()))
        .push(Box::new(Dense::new(4, 2, &mut rng)));
    let input = random_input(6, 3, 6);
    check_param_grads(&mut model, &input, 0);
}

#[test]
fn conv_overlapping_gradients() {
    // Overlapping windows exercise the col2im accumulation path.
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = Sequential::new()
        .push(Box::new(Conv1D::new(2, 3, 3, 1, &mut rng)))
        .push(Box::new(SumPool::new()))
        .push(Box::new(Dense::new(3, 2, &mut rng)));
    let input = random_input(7, 2, 8);
    check_param_grads(&mut model, &input, 1);
}

#[test]
fn full_deepmap_architecture_gradients() {
    // The exact Fig. 4 stack (m=5 channels, r=3, w=4 vertices):
    // Conv(k=r, s=r, 32) → ReLU → Conv(1,1,16) → ReLU → Conv(1,1,8) → ReLU
    // → SumPool → Dense(128) → ReLU → Dense(classes). Dropout omitted here
    // because finite differences need a deterministic forward.
    let mut rng = StdRng::seed_from_u64(9);
    let mut model = Sequential::new()
        .push(Box::new(Conv1D::new(5, 32, 3, 3, &mut rng)))
        .push(Box::new(ReLU::new()))
        .push(Box::new(Conv1D::new(32, 16, 1, 1, &mut rng)))
        .push(Box::new(ReLU::new()))
        .push(Box::new(Conv1D::new(16, 8, 1, 1, &mut rng)))
        .push(Box::new(ReLU::new()))
        .push(Box::new(SumPool::new()))
        .push(Box::new(Dense::new(8, 128, &mut rng)))
        .push(Box::new(ReLU::new()))
        .push(Box::new(Dense::new(128, 3, &mut rng)));
    let input = random_input(12, 5, 10);
    check_param_grads(&mut model, &input, 2);
    check_input_grads(&mut model, &input, 2);
}

#[test]
fn sum_pool_gradients() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut model = Sequential::new()
        .push(Box::new(SumPool::new()))
        .push(Box::new(Dense::new(4, 2, &mut rng)));
    let input = random_input(5, 4, 12);
    check_param_grads(&mut model, &input, 0);
}
