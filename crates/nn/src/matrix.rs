//! Dense row-major `f32` matrices.
//!
//! The NN substrate works on small dense matrices: a sample flowing through
//! the DeepMap CNN is a `(sequence length × channels)` matrix, and layer
//! parameters are weight matrices. The matmuls run hand-unrolled
//! micro-kernels inside cache-blocked loops: the AXPY-style products
//! (`matmul`, `t_matmul`) process four contributions of the contracted
//! dimension per pass over an eight-lane output chunk, and the dot-product
//! kernel (`matmul_t`) runs eight independent accumulator chains (four
//! output rows × two output columns) so the serial dependence of a single
//! dot product stops bounding throughput. The kernels are plain array/slice
//! code — no intrinsics, no nightly features — shaped so LLVM lowers the
//! lane loops to vector instructions (AVX2 with `target-cpu=native`, SSE2
//! otherwise). No BLAS dependency is allowed in this workspace.
//!
//! Determinism: unrolling and blocking only change *which* output elements
//! are worked on when, never the order in which contributions to a single
//! output element are accumulated (always ascending over the contracted
//! dimension, one rounded `+ a·b` at a time — deliberately not `mul_add`,
//! which would fuse the rounding and change results where FMA hardware
//! exists). Every product is therefore bit-identical to the naive triple
//! loop [`Matrix::matmul_reference`] on finite data — the property tests at
//! the bottom of this file and in `tests/proptests.rs` pin that down across
//! degenerate and tile-straddling shapes.

use std::fmt;

/// Tile length over the contracted dimension (`k`): one tile of the right
/// operand's rows stays resident in L1 while an output row accumulates.
const BLOCK_K: usize = 64;
/// Tile width over output columns: bounds the working set of the output row
/// slice the inner loop streams over.
const BLOCK_J: usize = 128;
/// Tile height over output rows for the dot-product (`matmul_t`) kernel:
/// each right-hand row is reused across this many left-hand rows while hot.
const BLOCK_I: usize = 32;
/// Output lanes processed together by the AXPY micro-kernels — one
/// `f32x8`-style vector register worth of columns.
const LANES: usize = 8;

/// Adds four ascending-`k` contributions `a[q]·b{q}[j]` into `out[j]`,
/// eight lanes at a time. Per output element the contribution order is
/// exactly `a[0]`, `a[1]`, `a[2]`, `a[3]`, each rounded separately, so the
/// result is bit-identical to four sequential scalar AXPY passes — the
/// unroll only cuts the loads/stores of `out` by 4× and feeds the lane
/// loops to the vectoriser.
#[inline]
fn axpy4(out: &mut [f32], a: [f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
    let n = out.len();
    debug_assert!(
        b0.len() == n && b1.len() == n && b2.len() == n && b3.len() == n,
        "axpy4: operand slices must match the output width (internal kernel invariant)"
    );
    let mut j = 0;
    while j + LANES <= n {
        let mut v = [0.0f32; LANES];
        v.copy_from_slice(&out[j..j + LANES]);
        for (o, &b) in v.iter_mut().zip(&b0[j..j + LANES]) {
            *o += a[0] * b;
        }
        for (o, &b) in v.iter_mut().zip(&b1[j..j + LANES]) {
            *o += a[1] * b;
        }
        for (o, &b) in v.iter_mut().zip(&b2[j..j + LANES]) {
            *o += a[2] * b;
        }
        for (o, &b) in v.iter_mut().zip(&b3[j..j + LANES]) {
            *o += a[3] * b;
        }
        out[j..j + LANES].copy_from_slice(&v);
        j += LANES;
    }
    while j < n {
        let mut v = out[j];
        v += a[0] * b0[j];
        v += a[1] * b1[j];
        v += a[2] * b2[j];
        v += a[3] * b3[j];
        out[j] = v;
        j += 1;
    }
}

/// Single-contribution AXPY tail of [`axpy4`]: `out[j] += a·b[j]`, eight
/// lanes at a time.
#[inline]
fn axpy1(out: &mut [f32], a: f32, b: &[f32]) {
    let n = out.len();
    debug_assert!(
        b.len() == n,
        "axpy1: operand slice must match the output width (internal kernel invariant)"
    );
    let mut j = 0;
    while j + LANES <= n {
        let mut v = [0.0f32; LANES];
        v.copy_from_slice(&out[j..j + LANES]);
        for (o, &bv) in v.iter_mut().zip(&b[j..j + LANES]) {
            *o += a * bv;
        }
        out[j..j + LANES].copy_from_slice(&v);
        j += LANES;
    }
    while j < n {
        out[j] += a * b[j];
        j += 1;
    }
}

/// Serial ascending-`k` dot product — one accumulator, the naive order.
#[inline]
fn dot1(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Eight independent serial dot products: four left rows against two right
/// rows. Every accumulator chain is a plain ascending-`k` sum (bit-identical
/// to [`dot1`]); the win is instruction-level parallelism — eight chains in
/// flight instead of one latency-bound chain — plus 4× reuse of each `b`
/// load and 2× reuse of each `a` load.
#[inline]
fn dot4x2(a: [&[f32]; 4], b0: &[f32], b1: &[f32]) -> [[f32; 2]; 4] {
    let kk = b0.len();
    debug_assert!(
        b1.len() == kk && a.iter().all(|row| row.len() == kk),
        "dot4x2: all operand rows must share the contracted length (internal kernel invariant)"
    );
    let mut s = [[0.0f32; 2]; 4];
    for k in 0..kk {
        let bv0 = b0[k];
        let bv1 = b1[k];
        for (q, row) in a.iter().enumerate() {
            let av = row[k];
            s[q][0] += av * bv0;
            s[q][1] += av * bv1;
        }
    }
    s
}

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: a {rows}x{cols} matrix needs {} scalars, got {}",
            rows * cols,
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Builds a `1 × n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Matrix {
            rows: 1,
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        // Internal hot-path bounds check only: release builds rely on the
        // slice index below, so the shape-carrying message is debug-only.
        debug_assert!(
            r < self.rows && c < self.cols,
            "Matrix::get: ({r}, {c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        // Internal hot-path bounds check only (see `get`).
        debug_assert!(
            r < self.rows && c < self.cols,
            "Matrix::set: ({r}, {c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = value;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        // Internal hot-path bounds check only: the slice below already
        // panics on overflow, this just names the shape in debug builds.
        debug_assert!(
            r < self.rows,
            "Matrix::row: row {r} out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        // Internal hot-path bounds check only (see `row`).
        debug_assert!(
            r < self.rows,
            "Matrix::row_mut: row {r} out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dimensions: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, kk, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        // Cache-blocked ikj: for each output row, walk `k` in tiles so the
        // touched rows of `other` stay hot, and `j` in tiles so the output
        // slice does. Inside a tile the micro-kernel retires four `k`
        // contributions per pass (`axpy4`), eight output lanes at a time.
        // Per output element the `k` order is still ascending, so results
        // are bit-identical to `matmul_reference`.
        for i in 0..m {
            let out_row = &mut out.data[i * n..(i + 1) * n];
            let a_row = &self.data[i * kk..(i + 1) * kk];
            for k0 in (0..kk).step_by(BLOCK_K) {
                let k1 = (k0 + BLOCK_K).min(kk);
                for j0 in (0..n).step_by(BLOCK_J) {
                    let j1 = (j0 + BLOCK_J).min(n);
                    let out_tile = &mut out_row[j0..j1];
                    let mut k = k0;
                    while k + 4 <= k1 {
                        let a = [a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]];
                        // Zero-skip (sparse one-hot features make all-zero
                        // quads common): adding 0·b changes nothing on
                        // finite data, so skipping stays bit-identical.
                        if a != [0.0; 4] {
                            axpy4(
                                out_tile,
                                a,
                                &other.data[k * n + j0..k * n + j1],
                                &other.data[(k + 1) * n + j0..(k + 1) * n + j1],
                                &other.data[(k + 2) * n + j0..(k + 2) * n + j1],
                                &other.data[(k + 3) * n + j0..(k + 3) * n + j1],
                            );
                        }
                        k += 4;
                    }
                    while k < k1 {
                        let a = a_row[k];
                        if a != 0.0 {
                            axpy1(out_tile, a, &other.data[k * n + j0..k * n + j1]);
                        }
                        k += 1;
                    }
                }
            }
        }
        out
    }

    /// The naive ascending-`k` triple loop (no blocking, no unrolling, no
    /// zero-skip): the bit-exactness oracle the micro-kernels are property
    /// tested against, and the scalar baseline the kernel micro-benches
    /// measure speedups from. Not for production use — it is the slow path
    /// by design.
    pub fn matmul_reference(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dimensions: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..other.cols {
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc += self.data[i * self.cols + k] * other.data[k * other.cols + j];
                }
                out.data[i * other.cols + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ · other` without materialising the transpose.
    ///
    /// # Panics
    /// Panics on outer-dimension mismatch.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul outer dimensions: {}x{} ᵀ· {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (rr, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        // Blocked over the contracted dimension (`r`, the shared row index):
        // within a tile each output row accumulates all of the tile's
        // contributions while resident, four at a time through `axpy4`. `r`
        // stays ascending per output element, so results are bit-identical
        // to the transpose-then-`matmul_reference` product.
        for r0 in (0..rr).step_by(BLOCK_K) {
            let r1 = (r0 + BLOCK_K).min(rr);
            for i in 0..m {
                let out_row = &mut out.data[i * n..(i + 1) * n];
                let mut r = r0;
                while r + 4 <= r1 {
                    let a = [
                        self.data[r * m + i],
                        self.data[(r + 1) * m + i],
                        self.data[(r + 2) * m + i],
                        self.data[(r + 3) * m + i],
                    ];
                    if a != [0.0; 4] {
                        axpy4(
                            out_row,
                            a,
                            &other.data[r * n..(r + 1) * n],
                            &other.data[(r + 1) * n..(r + 2) * n],
                            &other.data[(r + 2) * n..(r + 3) * n],
                            &other.data[(r + 3) * n..(r + 4) * n],
                        );
                    }
                    r += 4;
                }
                while r < r1 {
                    let a = self.data[r * m + i];
                    if a != 0.0 {
                        axpy1(out_row, a, &other.data[r * n..(r + 1) * n]);
                    }
                    r += 1;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materialising the transpose.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t inner dimensions: {}x{} · {}x{}ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, n) = (self.rows, other.rows);
        let mut out = Matrix::zeros(m, n);
        // Register-blocked dot products: a 4×2 block of outputs is computed
        // by `dot4x2` as eight independent serial chains, and each row of
        // `other` is further reused across a BLOCK_I tile of `self` rows
        // while hot. The single-accumulator ascending-`k` order of every
        // output element is untouched, so results are bit-identical to the
        // `matmul`-with-explicit-transpose product.
        for i0 in (0..m).step_by(BLOCK_I) {
            let i1 = (i0 + BLOCK_I).min(m);
            let mut j = 0;
            while j + 2 <= n {
                let b0 = other.row(j);
                let b1 = other.row(j + 1);
                let mut i = i0;
                while i + 4 <= i1 {
                    let s = dot4x2(
                        [
                            self.row(i),
                            self.row(i + 1),
                            self.row(i + 2),
                            self.row(i + 3),
                        ],
                        b0,
                        b1,
                    );
                    for (q, pair) in s.iter().enumerate() {
                        out.data[(i + q) * n + j] = pair[0];
                        out.data[(i + q) * n + j + 1] = pair[1];
                    }
                    i += 4;
                }
                while i < i1 {
                    let a_row = self.row(i);
                    out.data[i * n + j] = dot1(a_row, b0);
                    out.data[i * n + j + 1] = dot1(a_row, b1);
                    i += 1;
                }
                j += 2;
            }
            if j < n {
                let b0 = other.row(j);
                for i in i0..i1 {
                    out.data[i * n + j] = dot1(self.row(i), b0);
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise `self += other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_assign shape mismatch: {}x{} += {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise `self *= s`.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Sum over rows: returns a `1 × cols` matrix (the paper's summation
    /// readout, Eq. 7, when rows are vertices).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for (o, &v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Index of the maximum entry in row `r` (first on ties).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row = self.row(r);
            let cells: Vec<String> = row.iter().take(8).map(|v| format!("{v:>9.4}")).collect();
            writeln!(
                f,
                "  [{}{}]",
                cells.join(", "),
                if self.cols > 8 { ", …" } else { "" }
            )?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "a 2x3 matrix needs 6 scalars, got 5")]
    fn from_vec_mismatch_names_shape() {
        let _ = Matrix::from_vec(2, 3, vec![0.0; 5]);
    }

    #[test]
    #[should_panic(expected = "add_assign shape mismatch: 2x2 += 1x4")]
    fn add_assign_mismatch_names_shapes() {
        let mut a = Matrix::zeros(2, 2);
        a.add_assign(&Matrix::zeros(1, 4));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 4, (0..12).map(|v| v as f32).collect());
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|v| v as f32).collect());
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn sum_rows_matches_manual() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let s = a.sum_rows();
        assert_eq!(s.as_slice(), &[9., 12.]);
    }

    #[test]
    fn add_scale_zero() {
        let mut a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![10., 20., 30.]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[11., 22., 33.]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[5.5, 11., 16.5]);
        a.fill_zero();
        assert_eq!(a.as_slice(), &[0., 0., 0.]);
    }

    #[test]
    fn argmax_first_on_ties() {
        let a = Matrix::from_vec(1, 4, vec![1., 3., 3., 0.]);
        assert_eq!(a.argmax_row(0), 1);
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_vec(1, 2, vec![3., 4.]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn row_access() {
        let mut a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(a.row(1), &[3., 4.]);
        a.row_mut(0)[1] = 9.0;
        assert_eq!(a.get(0, 1), 9.0);
    }

    #[test]
    fn matmul_larger_than_one_block() {
        // Shapes straddling the 64/128 tile boundaries exercise ragged tails
        // in every blocking dimension.
        let (m, k, n) = (3, 67, 131);
        let a = Matrix::from_vec(m, k, (0..m * k).map(|v| (v % 13) as f32 - 6.0).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|v| (v % 7) as f32 - 3.0).collect());
        assert_eq!(a.matmul(&b), a.matmul_reference(&b));
        assert_eq!(a.transpose().t_matmul(&b), a.matmul_reference(&b));
        assert_eq!(a.matmul_t(&b.transpose()), a.matmul_reference(&b));
    }

    #[test]
    fn zero_width_contraction_yields_zeros() {
        // k = 0: an (m×0)·(0×n) product is all zeros, and the kernels must
        // not touch a single element of either empty operand.
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 5);
        assert_eq!(a.matmul(&b), Matrix::zeros(3, 5));
        assert_eq!(a.matmul_reference(&b), Matrix::zeros(3, 5));
        assert_eq!(a.transpose().t_matmul(&b), Matrix::zeros(3, 5));
        assert_eq!(a.matmul_t(&b.transpose()), Matrix::zeros(3, 5));
    }

    #[test]
    fn sparse_rows_hit_the_zero_skip() {
        // A quad that is entirely zero, a quad that mixes zero and
        // non-zero, and a ragged scalar tail — all against the reference.
        let mut a = Matrix::zeros(2, 11);
        for k in [4, 6, 10] {
            a.set(0, k, (k + 1) as f32);
            a.set(1, k, -(k as f32));
        }
        let b = Matrix::from_vec(11, 9, (0..99).map(|v| (v % 5) as f32 - 2.0).collect());
        assert_eq!(a.matmul(&b), a.matmul_reference(&b));
        assert_eq!(a.transpose().t_matmul(&b), a.matmul_reference(&b));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
            proptest::collection::vec(-10.0f32..10.0, rows * cols)
                .prop_map(move |data| Matrix::from_vec(rows, cols, data))
        }

        /// Random shapes deliberately straddling the tile sizes (64 / 128 /
        /// 32) and the 8-lane / 4-unroll micro-kernel widths, so ragged
        /// block and vector tails are exercised, with the operand pair
        /// shaped consistently for one product.
        fn product_inputs() -> impl Strategy<Value = (Matrix, Matrix)> {
            (1usize..12, 1usize..100, 1usize..150)
                .prop_flat_map(|(m, k, n)| (matrix(m, k), matrix(k, n)))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn blocked_products_match_naive_reference((a, b) in product_inputs()) {
                let naive = a.matmul_reference(&b);
                prop_assert_eq!(a.matmul(&b), naive.clone());
                prop_assert_eq!(a.transpose().t_matmul(&b), naive.clone());
                prop_assert_eq!(a.matmul_t(&b.transpose()), naive);
            }
        }
    }
}
