//! Dense row-major `f32` matrices.
//!
//! The NN substrate works on small dense matrices: a sample flowing through
//! the DeepMap CNN is a `(sequence length × channels)` matrix, and layer
//! parameters are weight matrices. The matmuls use cache-blocked `ikj`-order
//! loops whose slice-based inner loop the compiler auto-vectorises; no BLAS
//! dependency is allowed in this workspace.
//!
//! Determinism: blocking only changes *which* output elements are worked on
//! when, never the order in which contributions to a single output element
//! are accumulated (always ascending over the contracted dimension). Every
//! product is therefore bit-identical to the naive triple loop — the
//! property tests at the bottom of this file pin that down.

use std::fmt;

/// Tile length over the contracted dimension (`k`): one tile of the right
/// operand's rows stays resident in L1 while an output row accumulates.
const BLOCK_K: usize = 64;
/// Tile width over output columns: bounds the working set of the output row
/// slice the inner loop streams over.
const BLOCK_J: usize = 128;
/// Tile height over output rows for the dot-product (`matmul_t`) kernel:
/// each right-hand row is reused across this many left-hand rows while hot.
const BLOCK_I: usize = 32;

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a `1 × n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Matrix {
            rows: 1,
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = value;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    // The indexed `k` loop mirrors the blocked-tile arithmetic; iterator
    // chains over `a_row` obscure the k0..k1 tile bounds.
    #[allow(clippy::needless_range_loop)]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dimensions: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, kk, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        // Cache-blocked ikj: for each output row, walk `k` in tiles so the
        // touched rows of `other` stay hot, and `j` in tiles so the output
        // slice does. Per output element the `k` order is still ascending,
        // so results are bit-identical to the unblocked loop.
        for i in 0..m {
            let out_row = &mut out.data[i * n..(i + 1) * n];
            let a_row = &self.data[i * kk..(i + 1) * kk];
            for k0 in (0..kk).step_by(BLOCK_K) {
                let k1 = (k0 + BLOCK_K).min(kk);
                for j0 in (0..n).step_by(BLOCK_J) {
                    let j1 = (j0 + BLOCK_J).min(n);
                    for k in k0..k1 {
                        let a = a_row[k];
                        if a == 0.0 {
                            continue;
                        }
                        let b_row = &other.data[k * n + j0..k * n + j1];
                        for (o, &b) in out_row[j0..j1].iter_mut().zip(b_row) {
                            *o += a * b;
                        }
                    }
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without materialising the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul outer dimensions: {}x{} ᵀ· {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (rr, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        // Blocked over the contracted dimension (`r`, the shared row index):
        // within a tile each output row accumulates all of the tile's
        // contributions while resident. `r` stays ascending per output
        // element, so results are bit-identical to the unblocked loop.
        for r0 in (0..rr).step_by(BLOCK_K) {
            let r1 = (r0 + BLOCK_K).min(rr);
            for i in 0..m {
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for r in r0..r1 {
                    let a = self.data[r * m + i];
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &other.data[r * n..(r + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materialising the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t inner dimensions: {}x{} · {}x{}ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, n) = (self.rows, other.rows);
        let mut out = Matrix::zeros(m, n);
        // Row-blocked dot products: each row of `other` is reused across a
        // tile of `self` rows while hot. The single-accumulator ascending-k
        // dot per output element is untouched, so results are bit-identical
        // to the unblocked loop.
        for i0 in (0..m).step_by(BLOCK_I) {
            let i1 = (i0 + BLOCK_I).min(m);
            for j in 0..n {
                let b_row = other.row(j);
                for i in i0..i1 {
                    let a_row = self.row(i);
                    let mut acc = 0.0f32;
                    for (&a, &b) in a_row.iter().zip(b_row) {
                        acc += a * b;
                    }
                    out.data[i * n + j] = acc;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise `self += other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise `self *= s`.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Sum over rows: returns a `1 × cols` matrix (the paper's summation
    /// readout, Eq. 7, when rows are vertices).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for (o, &v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Index of the maximum entry in row `r` (first on ties).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row = self.row(r);
            let cells: Vec<String> = row.iter().take(8).map(|v| format!("{v:>9.4}")).collect();
            writeln!(
                f,
                "  [{}{}]",
                cells.join(", "),
                if self.cols > 8 { ", …" } else { "" }
            )?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 4, (0..12).map(|v| v as f32).collect());
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|v| v as f32).collect());
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn sum_rows_matches_manual() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let s = a.sum_rows();
        assert_eq!(s.as_slice(), &[9., 12.]);
    }

    #[test]
    fn add_scale_zero() {
        let mut a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![10., 20., 30.]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[11., 22., 33.]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[5.5, 11., 16.5]);
        a.fill_zero();
        assert_eq!(a.as_slice(), &[0., 0., 0.]);
    }

    #[test]
    fn argmax_first_on_ties() {
        let a = Matrix::from_vec(1, 4, vec![1., 3., 3., 0.]);
        assert_eq!(a.argmax_row(0), 1);
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_vec(1, 2, vec![3., 4.]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn row_access() {
        let mut a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(a.row(1), &[3., 4.]);
        a.row_mut(0)[1] = 9.0;
        assert_eq!(a.get(0, 1), 9.0);
    }

    #[test]
    fn matmul_larger_than_one_block() {
        // Shapes straddling the 64/128 tile boundaries exercise ragged tails
        // in every blocking dimension.
        let (m, k, n) = (3, 67, 131);
        let a = Matrix::from_vec(m, k, (0..m * k).map(|v| (v % 13) as f32 - 6.0).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|v| (v % 7) as f32 - 3.0).collect());
        assert_eq!(a.matmul(&b), naive_matmul(&a, &b));
        assert_eq!(a.transpose().t_matmul(&b), naive_matmul(&a, &b));
        assert_eq!(a.matmul_t(&b.transpose()), naive_matmul(&a, &b));
    }

    /// Naive ascending-`k` triple loop (no blocking, no zero-skip): the
    /// reference the blocked kernels must match bit for bit on finite data.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows());
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f32;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
            proptest::collection::vec(-10.0f32..10.0, rows * cols)
                .prop_map(move |data| Matrix::from_vec(rows, cols, data))
        }

        /// Random shapes deliberately straddling the tile sizes (64 / 128 /
        /// 32) so ragged block tails are exercised, with the operand pair
        /// shaped consistently for one product.
        fn product_inputs() -> impl Strategy<Value = (Matrix, Matrix)> {
            (1usize..12, 1usize..100, 1usize..150)
                .prop_flat_map(|(m, k, n)| (matrix(m, k), matrix(k, n)))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn blocked_products_match_naive_reference((a, b) in product_inputs()) {
                let naive = naive_matmul(&a, &b);
                prop_assert_eq!(a.matmul(&b), naive.clone());
                prop_assert_eq!(a.transpose().t_matmul(&b), naive.clone());
                prop_assert_eq!(a.matmul_t(&b.transpose()), naive);
            }
        }
    }
}
