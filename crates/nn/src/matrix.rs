//! Dense row-major `f32` matrices.
//!
//! The NN substrate works on small dense matrices: a sample flowing through
//! the DeepMap CNN is a `(sequence length × channels)` matrix, and layer
//! parameters are weight matrices. The matmul uses the cache-friendly `ikj`
//! loop order, which the compiler auto-vectorises well at these sizes; no
//! BLAS dependency is allowed in this workspace.

use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a `1 × n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Matrix {
            rows: 1,
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = value;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dimensions: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj order: the inner loop streams both `other` and `out` rows.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without materialising the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul outer dimensions: {}x{} ᵀ· {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materialising the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t inner dimensions: {}x{} · {}x{}ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise `self += other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise `self *= s`.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Sum over rows: returns a `1 × cols` matrix (the paper's summation
    /// readout, Eq. 7, when rows are vertices).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for (o, &v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Index of the maximum entry in row `r` (first on ties).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row = self.row(r);
            let cells: Vec<String> = row.iter().take(8).map(|v| format!("{v:>9.4}")).collect();
            writeln!(
                f,
                "  [{}{}]",
                cells.join(", "),
                if self.cols > 8 { ", …" } else { "" }
            )?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 4, (0..12).map(|v| v as f32).collect());
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|v| v as f32).collect());
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn sum_rows_matches_manual() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let s = a.sum_rows();
        assert_eq!(s.as_slice(), &[9., 12.]);
    }

    #[test]
    fn add_scale_zero() {
        let mut a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![10., 20., 30.]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[11., 22., 33.]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[5.5, 11., 16.5]);
        a.fill_zero();
        assert_eq!(a.as_slice(), &[0., 0., 0.]);
    }

    #[test]
    fn argmax_first_on_ties() {
        let a = Matrix::from_vec(1, 4, vec![1., 3., 3., 0.]);
        assert_eq!(a.argmax_row(0), 1);
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_vec(1, 2, vec![3., 4.]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn row_access() {
        let mut a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(a.row(1), &[3., 4.]);
        a.row_mut(0)[1] = 9.0;
        assert_eq!(a.get(0, 1), 9.0);
    }
}
