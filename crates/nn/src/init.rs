//! Weight initialisation.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Glorot/Xavier uniform initialisation: entries drawn from
/// `U(-limit, limit)` with `limit = sqrt(6 / (fan_in + fan_out))`.
///
/// This is Keras's default `Dense`/`Conv1D` initialiser, which the paper's
/// implementation inherits.
pub fn glorot_uniform(
    fan_in: usize,
    fan_out: usize,
    rows: usize,
    cols: usize,
    rng: &mut StdRng,
) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-limit..=limit) as f32)
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Uniform initialisation in `[-scale, scale]`.
pub fn uniform(scale: f64, rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-scale..=scale) as f32)
        .collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn glorot_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = glorot_uniform(100, 50, 100, 50, &mut rng);
        let limit = (6.0f64 / 150.0).sqrt() as f32;
        assert!(w.as_slice().iter().all(|&v| v.abs() <= limit + 1e-6));
        // Not all zero.
        assert!(w.frobenius_norm() > 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = glorot_uniform(10, 10, 10, 10, &mut StdRng::seed_from_u64(7));
        let b = glorot_uniform(10, 10, 10, 10, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = uniform(0.01, 5, 5, &mut rng);
        assert!(w.as_slice().iter().all(|&v| v.abs() <= 0.01 + 1e-9));
    }
}
