//! Sequential model container.

use crate::layers::{Layer, Mode, Param};
use crate::loss::{predict_class, softmax_cross_entropy};
use crate::matrix::Matrix;
use crate::quant::{QuantError, QuantModel};

/// A stack of layers applied in order.
///
/// All the paper's architectures (the Fig. 4 CNN and the GNN baselines'
/// readout heads) are expressible as a `Sequential` over the layers in
/// [`crate::layers`]; graph-specific preprocessing happens before the
/// tensors enter the model.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    /// Compact summary — `dyn Layer` carries no Debug bound, so layers are
    /// reported by count and parameter total rather than contents.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("n_layers", &self.n_layers())
            .field("n_parameters", &self.n_parameters())
            .finish()
    }
}

impl Clone for Sequential {
    /// Deep-copies parameters and configuration via
    /// [`Layer::clone_layer`]; transient training caches start empty. Used
    /// to build per-thread model replicas for data-parallel training.
    fn clone(&self) -> Self {
        Sequential {
            layers: self.layers.iter().map(|l| l.clone_layer()).collect(),
        }
    }
}

impl Sequential {
    /// Empty model.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends a layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of trainable scalars.
    pub fn n_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.n_parameters()).sum()
    }

    /// Read-only views of every parameter tensor in the stable (layer,
    /// tensor) order of [`Sequential::params`]. Unlike `params`, this does
    /// not require exclusive access, so a loaded model can be inspected or
    /// checkpointed while shared.
    pub fn param_values(&self) -> Vec<&[f32]> {
        self.layers.iter().flat_map(|l| l.param_values()).collect()
    }

    /// Runs the full forward pass.
    pub fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    /// Runs only the first `n_layers` layers — used to read intermediate
    /// representations (e.g. DeepMap's deep vertex feature maps before the
    /// summation readout).
    ///
    /// # Panics
    /// Panics when `n_layers > self.n_layers()`.
    pub fn forward_prefix(&mut self, input: &Matrix, n_layers: usize, mode: Mode) -> Matrix {
        assert!(n_layers <= self.layers.len(), "prefix longer than model");
        self.forward_range(input, 0, n_layers, mode)
    }

    /// Runs layers `start..end` only. The caller is responsible for feeding
    /// an input shaped like the output of layer `start - 1`; the batched
    /// inference path uses this to resume after the readout.
    ///
    /// # Panics
    /// Panics when `start > end` or `end > self.n_layers()`.
    pub fn forward_range(
        &mut self,
        input: &Matrix,
        start: usize,
        end: usize,
        mode: Mode,
    ) -> Matrix {
        assert!(
            start <= end && end <= self.layers.len(),
            "invalid layer range"
        );
        let mut x = input.clone();
        for layer in self.layers[start..end].iter_mut() {
            x = layer.forward(&x, mode);
        }
        x
    }

    /// Pure inference forward pass: identical output to
    /// `forward(input, Mode::Eval)` but through [`Layer::infer`], so it needs
    /// only `&self` and a single model can serve many threads concurrently.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x);
        }
        x
    }

    /// Runs the full backward pass from the loss gradient at the output.
    pub fn backward(&mut self, grad_output: &Matrix) {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
    }

    /// All parameters in a stable (layer, tensor) order.
    pub fn params(&mut self) -> Vec<Param<'_>> {
        self.layers.iter_mut().flat_map(|l| l.params()).collect()
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Scales every accumulated gradient by `s` (used to average over a
    /// mini-batch before the optimiser step).
    pub fn scale_grads(&mut self, s: f32) {
        for p in self.params() {
            for g in p.grad.iter_mut() {
                *g *= s;
            }
        }
    }

    /// Forward in train mode, then backward through the fused
    /// softmax/cross-entropy loss. Returns `(loss, predicted_class)`.
    pub fn train_step(&mut self, input: &Matrix, target: usize) -> (f32, usize) {
        let logits = self.forward(input, Mode::Train);
        let predicted = predict_class(&logits);
        let (loss, grad) = softmax_cross_entropy(&logits, target);
        self.backward(&grad);
        (loss, predicted)
    }

    /// Inference: predicted class for one sample. Pure (`&self`), so shared
    /// references can predict from many threads at once.
    pub fn predict(&self, input: &Matrix) -> usize {
        let logits = self.infer(input);
        predict_class(&logits)
    }

    /// Positions every stochastic layer's noise stream (dropout masks) at
    /// `nonce`; see [`Layer::set_noise_nonce`]. Every noisy layer receives
    /// the same nonce — their streams stay decorrelated because each mixes
    /// its own seed in.
    pub fn set_noise_nonce(&mut self, nonce: u64) {
        for layer in &mut self.layers {
            layer.set_noise_nonce(nonce);
        }
    }

    /// Appends every accumulated gradient scalar to `out` in the stable
    /// (layer, tensor) order of [`Sequential::params`].
    pub fn grads_flat_into(&mut self, out: &mut Vec<f32>) {
        for p in self.params() {
            out.extend_from_slice(p.grad);
        }
    }

    /// Adds `flat` (a vector produced by [`Sequential::grads_flat_into`])
    /// into the model's gradient accumulators, in order.
    ///
    /// # Panics
    /// Panics when `flat` has a different total length than the model's
    /// parameters.
    pub fn add_grads_flat(&mut self, flat: &[f32]) {
        let mut offset = 0;
        for p in self.params() {
            let end = offset + p.grad.len();
            for (g, &v) in p.grad.iter_mut().zip(&flat[offset..end]) {
                *g += v;
            }
            offset = end;
        }
        assert_eq!(offset, flat.len(), "flat gradient length mismatch");
    }

    /// Copies every parameter value from `src` (same architecture) into
    /// `self`. Used to resynchronise data-parallel replicas with the master
    /// weights after each optimiser step.
    ///
    /// # Panics
    /// Panics when the two models' parameter tensors disagree in number or
    /// shape.
    pub fn copy_params_from(&mut self, src: &Sequential) {
        let src_values = src.param_values();
        let mut params = self.params();
        assert_eq!(
            params.len(),
            src_values.len(),
            "copy_params_from: tensor count mismatch"
        );
        for (dst, src) in params.iter_mut().zip(src_values) {
            dst.value.copy_from_slice(src);
        }
    }

    /// Layer names, for summaries.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Lowers the whole stack to an int8 [`QuantModel`] via
    /// [`Layer::quantize`]. Training state is untouched; the returned model
    /// is an independent inference artifact.
    ///
    /// # Errors
    /// Fails when any layer has no quantized lowering or a weight matrix
    /// exceeds the `i32` accumulator headroom — never a partial model.
    pub fn quantize(&self) -> Result<QuantModel, QuantError> {
        let layers = self
            .layers
            .iter()
            .map(|l| l.quantize())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(QuantModel::from_layers(layers))
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Sequential::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, ReLU, SumPool};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .push(Box::new(Dense::new(4, 8, &mut rng)))
            .push(Box::new(ReLU::new()))
            .push(Box::new(SumPool::new()))
            .push(Box::new(Dense::new(8, 2, &mut rng)))
    }

    #[test]
    fn forward_shapes() {
        let mut m = tiny_model(1);
        let x = Matrix::from_vec(3, 4, vec![0.1; 12]);
        let y = m.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (1, 2));
        assert_eq!(m.n_layers(), 4);
        assert_eq!(m.layer_names(), vec!["Dense", "ReLU", "SumPool", "Dense"]);
    }

    #[test]
    fn parameter_count() {
        let m = tiny_model(1);
        assert_eq!(m.n_parameters(), (4 * 8 + 8) + (8 * 2 + 2));
        let flat: usize = m.param_values().iter().map(|v| v.len()).sum();
        assert_eq!(flat, m.n_parameters());
    }

    #[test]
    fn forward_range_composes_to_full_forward() {
        let mut m = tiny_model(4);
        let x = Matrix::from_vec(3, 4, (0..12).map(|v| v as f32 * 0.2 - 1.0).collect());
        let full = m.forward(&x, Mode::Eval);
        let mid = m.forward_range(&x, 0, 2, Mode::Eval);
        let tail = m.forward_range(&mid, 2, 4, Mode::Eval);
        assert_eq!(tail, full);
        // Empty range is the identity.
        assert_eq!(m.forward_range(&x, 1, 1, Mode::Eval), x);
    }

    #[test]
    #[should_panic(expected = "invalid layer range")]
    fn forward_range_rejects_bad_bounds() {
        let mut m = tiny_model(1);
        m.forward_range(&Matrix::zeros(3, 4), 2, 9, Mode::Eval);
    }

    #[test]
    fn train_step_reduces_loss_with_sgd_like_updates() {
        let mut m = tiny_model(2);
        let x = Matrix::from_vec(3, 4, vec![0.3; 12]);
        let mut opt = crate::optim::RmsProp::new(0.01);
        let (first_loss, _) = m.train_step(&x, 1);
        m.scale_grads(1.0);
        opt.step(&mut m.params());
        m.zero_grad();
        let mut last_loss = first_loss;
        for _ in 0..50 {
            let (loss, _) = m.train_step(&x, 1);
            opt.step(&mut m.params());
            m.zero_grad();
            last_loss = loss;
        }
        assert!(
            last_loss < first_loss * 0.5,
            "loss did not decrease: {first_loss} -> {last_loss}"
        );
        assert_eq!(m.predict(&x), 1);
    }

    #[test]
    fn infer_matches_eval_forward() {
        let mut m = tiny_model(5);
        let x = Matrix::from_vec(3, 4, (0..12).map(|v| v as f32 * 0.3 - 1.5).collect());
        let eval = m.forward(&x, Mode::Eval);
        assert_eq!(m.infer(&x), eval);
        assert_eq!(m.predict(&x), crate::loss::predict_class(&eval));
    }

    #[test]
    fn clone_replicates_parameters_and_function() {
        let m = tiny_model(6);
        let replica = m.clone();
        assert_eq!(m.n_parameters(), replica.n_parameters());
        for (a, b) in m.param_values().iter().zip(replica.param_values()) {
            assert_eq!(*a, b);
        }
        let x = Matrix::from_vec(2, 4, vec![0.25; 8]);
        assert_eq!(m.infer(&x), replica.infer(&x));
    }

    #[test]
    fn flat_gradients_round_trip() {
        let mut m = tiny_model(7);
        let x = Matrix::from_vec(2, 4, vec![0.4; 8]);
        m.train_step(&x, 1);
        let mut flat = Vec::new();
        m.grads_flat_into(&mut flat);
        assert_eq!(flat.len(), m.n_parameters());

        // Adding the captured gradients into a zeroed clone reproduces the
        // original accumulators exactly.
        let mut other = m.clone();
        other.zero_grad();
        other.add_grads_flat(&flat);
        let mut flat_other = Vec::new();
        other.grads_flat_into(&mut flat_other);
        assert_eq!(flat, flat_other);
    }

    #[test]
    fn copy_params_from_resynchronises() {
        let src = tiny_model(8);
        let mut dst = tiny_model(9);
        assert_ne!(src.param_values()[0], dst.param_values()[0]);
        dst.copy_params_from(&src);
        for (a, b) in src.param_values().iter().zip(dst.param_values()) {
            assert_eq!(*a, b);
        }
    }

    #[test]
    fn zero_grad_resets_accumulators() {
        let mut m = tiny_model(3);
        let x = Matrix::from_vec(2, 4, vec![0.5; 8]);
        m.train_step(&x, 0);
        m.zero_grad();
        for p in m.params() {
            assert!(p.grad.iter().all(|&g| g == 0.0));
        }
    }
}
