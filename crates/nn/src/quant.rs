//! int8 quantized inference.
//!
//! A trained [`Sequential`] can be lowered to a [`QuantModel`]: weight
//! matrices become per-output-channel symmetric int8
//! ([`QuantizedMatrix`], scale `max|w|/127`, zero-point 0), activations are
//! quantized dynamically per row at the same symmetry, and every matmul
//! accumulates in `i32` — exact integer arithmetic, order-independent, so
//! the quantized path is trivially deterministic across thread counts and
//! kernel shapes. A single dequantize per output element
//! (`acc as f32 · row_scale · channel_scale`) returns to f32 between
//! layers, so the nonlinearities and readouts run unchanged.
//!
//! Quantization is *inference-only* and opt-in: training math is untouched,
//! and serving selects the path explicitly (`ServerConfig::precision` in
//! `deepmap-serve`, default f32). The quantized model serializes to the
//! framed `QNT1` binary format (same strictness discipline as
//! [`crate::persist`]: magic, full validation, trailing-byte rejection),
//! which `deepmap-serve` embeds as the extra section of a `DMB2` bundle.
//!
//! Accuracy is probabilistic, not exact — per-element error of one matmul
//! is bounded by `k · s_act · s_w · 127.5` (see the property test), and the
//! end-to-end guard is a *prediction agreement* gate: callers compare
//! quantized and f32 predictions on real samples and reject the quantized
//! model when agreement falls below their threshold (the serve crate does
//! this at bundle build time).

use crate::matrix::Matrix;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: &[u8; 4] = b"QNT1";

/// Largest contracted dimension the `i32` accumulator provably cannot
/// overflow at: every product is in `[-127·127, 127·127]`, so `k` terms
/// need `k · 127² ≤ i32::MAX`.
pub const MAX_ACC_K: usize = (i32::MAX / (127 * 127)) as usize;

/// Errors from quantization and `QNT1` (de)serialisation.
#[derive(Debug, PartialEq)]
pub enum QuantError {
    /// The model contains a layer with no quantized lowering.
    NotQuantizable {
        /// Name of the offending layer.
        layer: &'static str,
    },
    /// A weight matrix's contracted dimension exceeds [`MAX_ACC_K`].
    AccumulatorOverflow {
        /// The contracted dimension that is too large.
        k: usize,
    },
    /// The buffer does not start with the `QNT1` magic.
    BadMagic,
    /// The buffer ended before the declared data.
    Truncated,
    /// An unknown layer tag was encountered.
    BadTag {
        /// The unrecognised tag byte.
        tag: u8,
    },
    /// The buffer contains bytes beyond the declared data.
    TrailingBytes {
        /// Number of unexpected bytes after the last layer.
        extra: usize,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::NotQuantizable { layer } => {
                write!(f, "layer {layer} has no quantized lowering")
            }
            QuantError::AccumulatorOverflow { k } => write!(
                f,
                "contracted dimension {k} exceeds the int8 accumulator bound {MAX_ACC_K}"
            ),
            QuantError::BadMagic => write!(f, "not a QNT1 quantized model"),
            QuantError::Truncated => write!(f, "quantized model truncated"),
            QuantError::BadTag { tag } => write!(f, "unknown quantized layer tag {tag}"),
            QuantError::TrailingBytes { extra } => {
                write!(f, "quantized model has {extra} trailing bytes")
            }
        }
    }
}

impl std::error::Error for QuantError {}

/// A `(k × n)` weight matrix stored as per-output-channel symmetric int8.
///
/// Column `j` holds `q[i][j] = round(w[i][j] / scale[j])` with
/// `scale[j] = max_i |w[i][j]| / 127` — symmetric (zero-point 0), so the
/// integer dot product needs no zero-point correction terms.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    /// Per-column dequantization scales, length `cols`.
    scales: Vec<f32>,
    /// Row-major int8 values, length `rows · cols`.
    q: Vec<i8>,
}

impl QuantizedMatrix {
    /// Quantizes a weight matrix per output channel (column).
    ///
    /// # Errors
    /// [`QuantError::AccumulatorOverflow`] when the contracted dimension
    /// (`w.rows()`) exceeds [`MAX_ACC_K`].
    pub fn quantize(w: &Matrix) -> Result<Self, QuantError> {
        let (rows, cols) = w.shape();
        if rows > MAX_ACC_K {
            return Err(QuantError::AccumulatorOverflow { k: rows });
        }
        let mut scales = vec![0.0f32; cols];
        for i in 0..rows {
            for (s, &v) in scales.iter_mut().zip(w.row(i)) {
                *s = s.max(v.abs());
            }
        }
        for s in &mut scales {
            *s /= 127.0;
        }
        let mut q = vec![0i8; rows * cols];
        for i in 0..rows {
            let row = w.row(i);
            let qrow = &mut q[i * cols..(i + 1) * cols];
            for ((dst, &v), &s) in qrow.iter_mut().zip(row).zip(&scales) {
                // All-zero columns keep scale 0; their quantized values stay
                // 0 and dequantize back to exactly 0.
                *dst = if s == 0.0 {
                    0
                } else {
                    (v / s).round().clamp(-127.0, 127.0) as i8
                };
            }
        }
        Ok(QuantizedMatrix {
            rows,
            cols,
            scales,
            q,
        })
    }

    /// Rows (the contracted dimension of [`qmatmul`]).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns (output channels).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-column dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Reconstructs the nearest f32 matrix (`q · scale` per element) — the
    /// round-trip target the quantization error bound is measured against.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let row = out.row_mut(i);
            let qrow = &self.q[i * self.cols..(i + 1) * self.cols];
            for ((o, &qv), &s) in row.iter_mut().zip(qrow).zip(&self.scales) {
                *o = qv as f32 * s;
            }
        }
        out
    }

    /// Serialized payload size in bytes (for compression-ratio reporting).
    pub fn storage_bytes(&self) -> usize {
        8 + 4 * self.scales.len() + self.q.len()
    }

    fn write_into(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.rows as u32);
        buf.put_u32_le(self.cols as u32);
        for &s in &self.scales {
            buf.put_f32_le(s);
        }
        for &v in &self.q {
            buf.put_u8(v as u8);
        }
    }

    fn read_from(cursor: &mut &[u8]) -> Result<Self, QuantError> {
        if cursor.remaining() < 8 {
            return Err(QuantError::Truncated);
        }
        let rows = cursor.get_u32_le() as usize;
        let cols = cursor.get_u32_le() as usize;
        if rows > MAX_ACC_K {
            return Err(QuantError::AccumulatorOverflow { k: rows });
        }
        if cursor.remaining() < 4 * cols {
            return Err(QuantError::Truncated);
        }
        let mut scales = Vec::with_capacity(cols);
        for _ in 0..cols {
            scales.push(cursor.get_f32_le());
        }
        let n = rows.checked_mul(cols).ok_or(QuantError::Truncated)?;
        if cursor.remaining() < n {
            return Err(QuantError::Truncated);
        }
        let mut q = Vec::with_capacity(n);
        for _ in 0..n {
            q.push(cursor.get_u8() as i8);
        }
        Ok(QuantizedMatrix {
            rows,
            cols,
            scales,
            q,
        })
    }
}

/// Symmetrically quantizes one activation row into `out`, returning the
/// scale (`max|x|/127`; 0 for an all-zero row, whose quantized values are
/// all 0).
pub fn quantize_row(row: &[f32], out: &mut [i8]) -> f32 {
    assert_eq!(
        row.len(),
        out.len(),
        "quantize_row: input row has {} values, output buffer {}",
        row.len(),
        out.len()
    );
    let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 {
        out.iter_mut().for_each(|v| *v = 0);
        return 0.0;
    }
    let scale = max_abs / 127.0;
    let inv = 127.0 / max_abs;
    for (o, &v) in out.iter_mut().zip(row) {
        *o = (v * inv).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// Quantized matmul: `act (m × k, f32) · w (k × n, int8)` → f32 `(m × n)`.
///
/// Each activation row is quantized dynamically ([`quantize_row`]), the dot
/// products accumulate exactly in `i32` (AXPY order over the output row, so
/// the inner loop is a unit-stride widening multiply-add the vectoriser
/// handles), and each output dequantizes once:
/// `out[i][j] = acc · s_act[i] · s_w[j]`. Integer accumulation is exact, so
/// results are independent of summation order and thread count by
/// construction.
///
/// # Panics
/// Panics on inner-dimension mismatch. The accumulator headroom bound
/// (`k ≤` [`MAX_ACC_K`]) is enforced when `w` is built.
pub fn qmatmul(act: &Matrix, w: &QuantizedMatrix) -> Matrix {
    assert_eq!(
        act.cols(),
        w.rows,
        "qmatmul inner dimensions: {}x{} · {}x{}",
        act.rows(),
        act.cols(),
        w.rows,
        w.cols
    );
    let (m, k, n) = (act.rows(), act.cols(), w.cols);
    let mut out = Matrix::zeros(m, n);
    let mut qrow = vec![0i8; k];
    let mut acc = vec![0i32; n];
    for i in 0..m {
        let s_act = quantize_row(act.row(i), &mut qrow);
        acc.iter_mut().for_each(|a| *a = 0);
        for (kk, &qa) in qrow.iter().enumerate() {
            let a = qa as i32;
            // ReLU activations make zero rows common; 0·w adds nothing.
            if a == 0 {
                continue;
            }
            let wrow = &w.q[kk * n..(kk + 1) * n];
            for (o, &b) in acc.iter_mut().zip(wrow) {
                *o += a * b as i32;
            }
        }
        let out_row = out.row_mut(i);
        for ((o, &a), &sw) in out_row.iter_mut().zip(&acc).zip(&w.scales) {
            *o = a as f32 * (s_act * sw);
        }
    }
    out
}

/// One layer of a quantized inference stack.
///
/// Parameterised layers carry int8 weights and f32 biases; stateless layers
/// are lowered structurally (`Dropout` becomes `Identity` — its inference
/// forward already is).
#[derive(Debug, Clone, PartialEq)]
pub enum QuantLayer {
    /// im2col convolution with int8 weights.
    Conv1D {
        /// Window length.
        kernel: usize,
        /// Window step.
        stride: usize,
        /// Input channels.
        c_in: usize,
        /// `(kernel·c_in × filters)` quantized weights.
        w: QuantizedMatrix,
        /// Per-filter f32 bias.
        b: Vec<f32>,
    },
    /// Affine layer with int8 weights.
    Dense {
        /// `(in_dim × out_dim)` quantized weights.
        w: QuantizedMatrix,
        /// Per-output f32 bias.
        b: Vec<f32>,
    },
    /// Elementwise `max(0, x)`.
    ReLU,
    /// Elementwise `tanh(x)`.
    Tanh,
    /// Row summation readout `(L × C) → (1 × C)`.
    SumPool,
    /// Row-major reshape `(L × C) → (1 × L·C)`.
    Flatten,
    /// Pass-through (inference lowering of `Dropout`).
    Identity,
}

impl QuantLayer {
    /// Layer name, matching the f32 [`crate::layers::Layer::name`]
    /// convention.
    pub fn name(&self) -> &'static str {
        match self {
            QuantLayer::Conv1D { .. } => "Conv1D",
            QuantLayer::Dense { .. } => "Dense",
            QuantLayer::ReLU => "ReLU",
            QuantLayer::Tanh => "Tanh",
            QuantLayer::SumPool => "SumPool",
            QuantLayer::Flatten => "Flatten",
            QuantLayer::Identity => "Identity",
        }
    }

    /// Runs the layer forward.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        match self {
            QuantLayer::Conv1D {
                kernel,
                stride,
                c_in,
                w,
                b,
            } => {
                assert_eq!(
                    input.cols(),
                    *c_in,
                    "quantized Conv1D: input has {} channels, layer expects {c_in}",
                    input.cols()
                );
                assert!(
                    input.rows() >= *kernel,
                    "quantized Conv1D: input length {} shorter than kernel {kernel}",
                    input.rows()
                );
                let l_out = (input.rows() - kernel) / stride + 1;
                let mut cols = Matrix::zeros(l_out, kernel * c_in);
                for t in 0..l_out {
                    let dst = cols.row_mut(t);
                    for k in 0..*kernel {
                        let src = input.row(t * stride + k);
                        dst[k * c_in..(k + 1) * c_in].copy_from_slice(src);
                    }
                }
                let mut out = qmatmul(&cols, w);
                add_bias(&mut out, b);
                out
            }
            QuantLayer::Dense { w, b } => {
                let mut out = qmatmul(input, w);
                add_bias(&mut out, b);
                out
            }
            QuantLayer::ReLU => {
                let mut out = input.clone();
                for v in out.as_mut_slice() {
                    *v = v.max(0.0);
                }
                out
            }
            QuantLayer::Tanh => {
                let mut out = input.clone();
                for v in out.as_mut_slice() {
                    *v = v.tanh();
                }
                out
            }
            QuantLayer::SumPool => input.sum_rows(),
            QuantLayer::Flatten => {
                Matrix::from_vec(1, input.rows() * input.cols(), input.as_slice().to_vec())
            }
            QuantLayer::Identity => input.clone(),
        }
    }

    fn write_into(&self, buf: &mut BytesMut) {
        match self {
            QuantLayer::Conv1D {
                kernel,
                stride,
                c_in,
                w,
                b,
            } => {
                buf.put_u8(0);
                buf.put_u32_le(*kernel as u32);
                buf.put_u32_le(*stride as u32);
                buf.put_u32_le(*c_in as u32);
                w.write_into(buf);
                write_f32s(buf, b);
            }
            QuantLayer::Dense { w, b } => {
                buf.put_u8(1);
                w.write_into(buf);
                write_f32s(buf, b);
            }
            QuantLayer::ReLU => buf.put_u8(2),
            QuantLayer::Tanh => buf.put_u8(3),
            QuantLayer::SumPool => buf.put_u8(4),
            QuantLayer::Flatten => buf.put_u8(5),
            QuantLayer::Identity => buf.put_u8(6),
        }
    }

    fn read_from(cursor: &mut &[u8]) -> Result<Self, QuantError> {
        if cursor.remaining() < 1 {
            return Err(QuantError::Truncated);
        }
        match cursor.get_u8() {
            0 => {
                if cursor.remaining() < 12 {
                    return Err(QuantError::Truncated);
                }
                let kernel = cursor.get_u32_le() as usize;
                let stride = cursor.get_u32_le() as usize;
                let c_in = cursor.get_u32_le() as usize;
                let w = QuantizedMatrix::read_from(cursor)?;
                let b = read_f32s(cursor)?;
                Ok(QuantLayer::Conv1D {
                    kernel,
                    stride,
                    c_in,
                    w,
                    b,
                })
            }
            1 => {
                let w = QuantizedMatrix::read_from(cursor)?;
                let b = read_f32s(cursor)?;
                Ok(QuantLayer::Dense { w, b })
            }
            2 => Ok(QuantLayer::ReLU),
            3 => Ok(QuantLayer::Tanh),
            4 => Ok(QuantLayer::SumPool),
            5 => Ok(QuantLayer::Flatten),
            6 => Ok(QuantLayer::Identity),
            tag => Err(QuantError::BadTag { tag }),
        }
    }
}

fn add_bias(out: &mut Matrix, b: &[f32]) {
    for r in 0..out.rows() {
        for (o, &bias) in out.row_mut(r).iter_mut().zip(b) {
            *o += bias;
        }
    }
}

fn write_f32s(buf: &mut BytesMut, values: &[f32]) {
    buf.put_u32_le(values.len() as u32);
    for &v in values {
        buf.put_f32_le(v);
    }
}

fn read_f32s(cursor: &mut &[u8]) -> Result<Vec<f32>, QuantError> {
    if cursor.remaining() < 4 {
        return Err(QuantError::Truncated);
    }
    let len = cursor.get_u32_le() as usize;
    if cursor.remaining() < 4 * len {
        return Err(QuantError::Truncated);
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(cursor.get_f32_le());
    }
    Ok(out)
}

/// A quantized inference stack lowered from a [`Sequential`]
/// (via [`Sequential::quantize`](crate::model::Sequential::quantize)).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantModel {
    layers: Vec<QuantLayer>,
}

impl QuantModel {
    /// Builds a model from explicit layers (deserialization and tests; the
    /// normal entry point is `Sequential::quantize`).
    pub fn from_layers(layers: Vec<QuantLayer>) -> Self {
        QuantModel { layers }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Layer names in order.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Full forward pass. Pure (`&self`), so one model serves many threads.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x);
        }
        x
    }

    /// Runs layers `start..end` only — same contract as
    /// [`Sequential::forward_range`](crate::model::Sequential::forward_range),
    /// used by the batched serving path to split the conv stack from the
    /// readout head.
    ///
    /// # Panics
    /// Panics when `start > end` or `end > self.n_layers()`.
    pub fn infer_range(&self, input: &Matrix, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.layers.len(),
            "invalid layer range {start}..{end} for {} layers",
            self.layers.len()
        );
        let mut x = input.clone();
        for layer in &self.layers[start..end] {
            x = layer.infer(&x);
        }
        x
    }

    /// Total serialized size of the int8 weight payloads (for reporting the
    /// compression ratio against 4-bytes-per-scalar f32 checkpoints).
    pub fn weight_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                QuantLayer::Conv1D { w, b, .. } | QuantLayer::Dense { w, b } => {
                    w.storage_bytes() + 4 * b.len()
                }
                _ => 0,
            })
            .sum()
    }

    /// Serialises to the framed `QNT1` format:
    ///
    /// ```text
    /// magic "QNT1" | u32 layer count | per layer: u8 tag | payload
    /// ```
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.weight_bytes() + 16 * self.layers.len());
        buf.put_slice(MAGIC);
        buf.put_u32_le(self.layers.len() as u32);
        for layer in &self.layers {
            layer.write_into(&mut buf);
        }
        buf.freeze()
    }

    /// Deserialises a [`QuantModel::to_bytes`] frame.
    ///
    /// # Errors
    /// Rejects bad magic, truncation, unknown layer tags, accumulator-unsafe
    /// shapes, and trailing bytes — nothing partial is ever returned.
    pub fn from_bytes(data: &[u8]) -> Result<Self, QuantError> {
        let mut cursor = data;
        if cursor.remaining() < 8 {
            return Err(QuantError::Truncated);
        }
        let mut magic = [0u8; 4];
        cursor.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(QuantError::BadMagic);
        }
        let count = cursor.get_u32_le() as usize;
        let mut layers = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            layers.push(QuantLayer::read_from(&mut cursor)?);
        }
        if cursor.remaining() != 0 {
            return Err(QuantError::TrailingBytes {
                extra: cursor.remaining(),
            });
        }
        Ok(QuantModel { layers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv1D, Dense, Dropout, ReLU, SumPool};
    use crate::model::Sequential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_matrix(rows: usize, cols: usize, seed: f32) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|v| ((v as f32 * 0.37 + seed).sin()) * 2.0)
                .collect(),
        )
    }

    #[test]
    fn quantize_round_trip_error_bounded() {
        let w = sample_matrix(13, 7, 0.5);
        let q = QuantizedMatrix::quantize(&w).unwrap();
        let back = q.dequantize();
        for j in 0..w.cols() {
            // Per-element error ≤ scale/2 (round-to-nearest on a symmetric
            // grid).
            let bound = q.scales()[j] * 0.5 + 1e-6;
            for i in 0..w.rows() {
                let err = (w.get(i, j) - back.get(i, j)).abs();
                assert!(err <= bound, "({i},{j}): err {err} > bound {bound}");
            }
        }
    }

    #[test]
    fn zero_column_quantizes_to_exact_zero() {
        let mut w = sample_matrix(5, 3, 1.0);
        for i in 0..5 {
            w.set(i, 1, 0.0);
        }
        let q = QuantizedMatrix::quantize(&w).unwrap();
        assert_eq!(q.scales()[1], 0.0);
        let back = q.dequantize();
        for i in 0..5 {
            assert_eq!(back.get(i, 1), 0.0);
        }
    }

    #[test]
    fn quantize_row_all_zero_is_scale_zero() {
        let mut out = vec![7i8; 4];
        let s = quantize_row(&[0.0; 4], &mut out);
        assert_eq!(s, 0.0);
        assert_eq!(out, vec![0, 0, 0, 0]);
    }

    #[test]
    fn accumulator_bound_enforced() {
        // A matrix taller than MAX_ACC_K is rejected without allocating the
        // full int8 payload. MAX_ACC_K ≈ 133k rows, so a 1-column matrix is
        // cheap to build.
        let w = Matrix::zeros(MAX_ACC_K + 1, 1);
        assert_eq!(
            QuantizedMatrix::quantize(&w),
            Err(QuantError::AccumulatorOverflow { k: MAX_ACC_K + 1 })
        );
    }

    #[test]
    fn qmatmul_error_bounded() {
        let a = sample_matrix(6, 40, 0.1);
        let w = sample_matrix(40, 9, 0.9);
        let q = QuantizedMatrix::quantize(&w).unwrap();
        let exact = a.matmul(&w);
        let approx = qmatmul(&a, &q);
        for i in 0..a.rows() {
            let s_act = a.row(i).iter().fold(0.0f32, |m, &v| m.max(v.abs())) / 127.0;
            for j in 0..w.cols() {
                // k terms, each off by ≤ x_max·s_w/2 + w_max·s_a/2 + s_a·s_w/4
                // with x_max = 127·s_a and w_max = 127·s_w, so per-term error
                // ≤ s_a·s_w·127.25; keep slack for f32 rounding of the
                // reference product.
                let bound = 40.0 * s_act * q.scales()[j] * 127.5 + 1e-4;
                let err = (exact.get(i, j) - approx.get(i, j)).abs();
                assert!(err <= bound, "({i},{j}): err {err} > bound {bound}");
            }
        }
    }

    #[test]
    fn qmatmul_deterministic() {
        let a = sample_matrix(4, 33, 0.2);
        let w = sample_matrix(33, 5, 0.7);
        let q = QuantizedMatrix::quantize(&w).unwrap();
        assert_eq!(qmatmul(&a, &q), qmatmul(&a, &q));
    }

    fn quantizable_model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .push(Box::new(Conv1D::new(3, 8, 2, 2, &mut rng)))
            .push(Box::new(ReLU::new()))
            .push(Box::new(Dropout::new(0.5, seed)))
            .push(Box::new(SumPool::new()))
            .push(Box::new(Dense::new(8, 4, &mut rng)))
    }

    #[test]
    fn sequential_quantize_lowers_every_layer() {
        let qm = quantizable_model(3).quantize().unwrap();
        assert_eq!(
            qm.layer_names(),
            // Dropout lowers to its inference semantics: identity.
            vec!["Conv1D", "ReLU", "Identity", "SumPool", "Dense"]
        );
    }

    #[test]
    fn quantized_model_tracks_f32_model() {
        let model = quantizable_model(4);
        let qm = model.quantize().unwrap();
        let x = sample_matrix(6, 3, 0.3);
        let f32_out = model.infer(&x);
        let q_out = qm.infer(&x);
        assert_eq!(f32_out.shape(), q_out.shape());
        let scale = f32_out
            .as_slice()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()))
            .max(1e-3);
        for (a, b) in f32_out.as_slice().iter().zip(q_out.as_slice()) {
            assert!(
                (a - b).abs() <= 0.15 * scale,
                "quantized output drifted: {a} vs {b}"
            );
        }
    }

    #[test]
    fn quantized_conv_matches_dequantized_f32_conv() {
        // With the weights *already* on the int8 grid, the only remaining
        // error is activation quantization.
        let model = quantizable_model(5);
        let qm = model.quantize().unwrap();
        let x = sample_matrix(4, 3, 0.8);
        let ranged = qm.infer_range(&x, 0, qm.n_layers());
        assert_eq!(ranged, qm.infer(&x));
    }

    #[test]
    fn infer_range_splits_like_sequential() {
        let qm = quantizable_model(6).quantize().unwrap();
        let x = sample_matrix(6, 3, 0.4);
        let mid = qm.infer_range(&x, 0, 2);
        let tail = qm.infer_range(&mid, 2, qm.n_layers());
        assert_eq!(tail, qm.infer(&x));
        assert_eq!(qm.infer_range(&x, 1, 1), x);
    }

    #[test]
    fn qnt1_round_trip() {
        let qm = quantizable_model(7).quantize().unwrap();
        let blob = qm.to_bytes();
        let back = QuantModel::from_bytes(&blob).unwrap();
        assert_eq!(back, qm);
        let x = sample_matrix(6, 3, 0.6);
        assert_eq!(back.infer(&x), qm.infer(&x));
    }

    #[test]
    fn qnt1_rejects_bad_magic() {
        let mut blob = quantizable_model(7).quantize().unwrap().to_bytes().to_vec();
        blob[0] ^= 0xFF;
        assert_eq!(QuantModel::from_bytes(&blob), Err(QuantError::BadMagic));
        assert_eq!(QuantModel::from_bytes(&[]), Err(QuantError::Truncated));
    }

    #[test]
    fn qnt1_rejects_truncation_and_trailing() {
        let blob = quantizable_model(8).quantize().unwrap().to_bytes();
        for cut in [5, blob.len() / 2, blob.len() - 1] {
            assert_eq!(
                QuantModel::from_bytes(&blob[..cut]),
                Err(QuantError::Truncated),
                "cut at {cut}"
            );
        }
        let mut oversized = blob.to_vec();
        oversized.extend_from_slice(&[1, 2, 3]);
        assert_eq!(
            QuantModel::from_bytes(&oversized),
            Err(QuantError::TrailingBytes { extra: 3 })
        );
    }

    #[test]
    fn qnt1_rejects_unknown_tag() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(1);
        buf.put_u8(42);
        assert_eq!(
            QuantModel::from_bytes(&buf.freeze()),
            Err(QuantError::BadTag { tag: 42 })
        );
    }

    #[test]
    fn weight_bytes_beats_f32() {
        let model = quantizable_model(9);
        let qm = model.quantize().unwrap();
        // int8 payload must undercut 4-bytes-per-parameter f32 storage.
        assert!(qm.weight_bytes() < 4 * model.n_parameters());
        assert!(qm.weight_bytes() > 0);
    }
}
