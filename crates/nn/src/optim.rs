//! Optimisers and learning-rate scheduling.

use crate::layers::Param;

/// RMSProp, the optimiser the paper trains every model with (§5.1:
/// "We use the RMSPROP optimizer with initial learning rate 0.01").
///
/// Update rule per scalar `w` with gradient `g`:
/// `cache = rho * cache + (1 - rho) * g²` ; `w -= lr * g / (sqrt(cache) + eps)`.
pub struct RmsProp {
    lr: f32,
    rho: f32,
    eps: f32,
    caches: Vec<Vec<f32>>,
}

impl RmsProp {
    /// Keras defaults: `rho = 0.9`, `eps = 1e-7`.
    pub fn new(lr: f32) -> Self {
        RmsProp {
            lr,
            rho: 0.9,
            eps: 1e-7,
            caches: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Overrides the learning rate (used by the plateau scheduler).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update to every parameter. `params` must be passed in a
    /// stable order across calls (the `Sequential` container guarantees
    /// this); gradients should already be averaged over the mini-batch.
    pub fn step(&mut self, params: &mut [Param<'_>]) {
        if self.caches.len() < params.len() {
            for p in params.iter().skip(self.caches.len()) {
                self.caches.push(vec![0.0; p.value.len()]);
            }
        }
        for (i, p) in params.iter_mut().enumerate() {
            let cache = &mut self.caches[i];
            assert_eq!(
                cache.len(),
                p.value.len(),
                "parameter {i} changed size between steps"
            );
            for ((w, &g), c) in p.value.iter_mut().zip(p.grad.iter()).zip(cache.iter_mut()) {
                *c = self.rho * *c + (1.0 - self.rho) * g * g;
                *w -= self.lr * g / (c.sqrt() + self.eps);
            }
        }
    }
}

/// Reduce-on-plateau learning-rate schedule.
///
/// Paper §5.1: "decay the learning rate by 0.5 if the number of epochs with
/// no improvement in the loss reaches five."
pub struct PlateauScheduler {
    factor: f32,
    patience: usize,
    best_loss: f32,
    epochs_without_improvement: usize,
    min_lr: f32,
}

impl PlateauScheduler {
    /// The paper's configuration: halve the LR after 5 stagnant epochs.
    pub fn paper_default() -> Self {
        PlateauScheduler::new(0.5, 5, 1e-6)
    }

    /// Custom schedule.
    pub fn new(factor: f32, patience: usize, min_lr: f32) -> Self {
        PlateauScheduler {
            factor,
            patience,
            best_loss: f32::INFINITY,
            epochs_without_improvement: 0,
            min_lr,
        }
    }

    /// Reports the end-of-epoch loss; lowers the optimiser's LR when the
    /// loss has not improved for `patience` consecutive epochs. Returns
    /// `true` when a decay was applied this call.
    pub fn observe(&mut self, loss: f32, optimizer: &mut RmsProp) -> bool {
        if loss < self.best_loss - 1e-6 {
            self.best_loss = loss;
            self.epochs_without_improvement = 0;
            return false;
        }
        self.epochs_without_improvement += 1;
        if self.epochs_without_improvement >= self.patience {
            self.epochs_without_improvement = 0;
            let new_lr = (optimizer.learning_rate() * self.factor).max(self.min_lr);
            optimizer.set_learning_rate(new_lr);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmsprop_descends_a_quadratic() {
        // Minimise f(w) = (w - 3)².
        let mut w = vec![0.0f32];
        let mut g = vec![0.0f32];
        let mut opt = RmsProp::new(0.05);
        for _ in 0..500 {
            g[0] = 2.0 * (w[0] - 3.0);
            let mut params = vec![Param {
                value: &mut w,
                grad: &mut g,
            }];
            opt.step(&mut params);
        }
        assert!((w[0] - 3.0).abs() < 0.05, "w = {}", w[0]);
    }

    #[test]
    fn rmsprop_normalises_gradient_scale() {
        // With RMSProp the first-step size is ~lr regardless of gradient
        // magnitude.
        for scale in [1.0f32, 1e4] {
            let mut w = vec![0.0f32];
            let mut g = vec![scale];
            let mut opt = RmsProp::new(0.01);
            let mut params = vec![Param {
                value: &mut w,
                grad: &mut g,
            }];
            opt.step(&mut params);
            let step = w[0].abs();
            // g / sqrt(0.1 g²) = 1/sqrt(0.1) ≈ 3.162, times lr.
            assert!((step - 0.01 / 0.1f32.sqrt()).abs() < 1e-4, "step {step}");
        }
    }

    #[test]
    fn plateau_halves_after_patience() {
        let mut opt = RmsProp::new(0.01);
        let mut sched = PlateauScheduler::new(0.5, 3, 1e-6);
        assert!(!sched.observe(1.0, &mut opt)); // best
        assert!(!sched.observe(1.0, &mut opt)); // stale 1
        assert!(!sched.observe(1.0, &mut opt)); // stale 2
        assert!(sched.observe(1.0, &mut opt)); // stale 3 -> decay
        assert!((opt.learning_rate() - 0.005).abs() < 1e-9);
    }

    #[test]
    fn plateau_resets_on_improvement() {
        let mut opt = RmsProp::new(0.01);
        let mut sched = PlateauScheduler::new(0.5, 2, 1e-6);
        sched.observe(1.0, &mut opt);
        sched.observe(1.0, &mut opt); // stale 1
        sched.observe(0.5, &mut opt); // improvement resets
        sched.observe(0.5, &mut opt); // stale 1
        assert!((opt.learning_rate() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn plateau_respects_min_lr() {
        let mut opt = RmsProp::new(1e-6);
        let mut sched = PlateauScheduler::new(0.5, 1, 1e-6);
        sched.observe(1.0, &mut opt);
        sched.observe(1.0, &mut opt);
        assert!(opt.learning_rate() >= 1e-6);
    }
}
