//! Rectified linear unit.

use super::{Layer, Mode};
use crate::matrix::Matrix;
use crate::quant::{QuantError, QuantLayer};

/// Elementwise `max(0, x)`.
///
/// The backward pass uses the convention `d relu(0) = 0`.
#[derive(Default)]
pub struct ReLU {
    /// Mask of strictly-positive inputs from the last Train forward.
    mask: Option<Vec<bool>>,
    shape: (usize, usize),
}

impl ReLU {
    /// New activation layer.
    pub fn new() -> Self {
        ReLU::default()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        let mut out = input.clone();
        if mode == Mode::Train {
            let mask: Vec<bool> = input.as_slice().iter().map(|&v| v > 0.0).collect();
            self.mask = Some(mask);
            self.shape = input.shape();
        }
        for v in out.as_mut_slice() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        out
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = input.clone();
        for v in out.as_mut_slice() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mask = self
            .mask
            .as_ref()
            .expect("ReLU::backward requires a Train-mode forward first");
        assert_eq!(grad_output.shape(), self.shape);
        let mut out = grad_output.clone();
        for (g, &m) in out.as_mut_slice().iter_mut().zip(mask) {
            if !m {
                *g = 0.0;
            }
        }
        out
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(ReLU::new())
    }

    fn quantize(&self) -> Result<QuantLayer, QuantError> {
        Ok(QuantLayer::ReLU)
    }

    fn name(&self) -> &'static str {
        "ReLU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut l = ReLU::new();
        let x = Matrix::from_vec(1, 4, vec![-1., 0., 2., -0.5]);
        let y = l.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[0., 0., 2., 0.]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut l = ReLU::new();
        let x = Matrix::from_vec(1, 4, vec![-1., 0., 2., 3.]);
        l.forward(&x, Mode::Train);
        let g = Matrix::from_vec(1, 4, vec![10., 10., 10., 10.]);
        let dx = l.backward(&g);
        assert_eq!(dx.as_slice(), &[0., 0., 10., 10.]);
    }

    #[test]
    fn stateless_params() {
        let mut l = ReLU::new();
        assert!(l.params().is_empty());
        assert_eq!(l.n_parameters(), 0);
    }
}
