//! Neural-network layers with hand-derived backward passes.
//!
//! Each layer consumes and produces a [`Matrix`] whose rows are sequence
//! positions (or a single pooled row) and whose columns are channels.
//! Samples flow through one at a time; parameter gradients accumulate across
//! a mini-batch and are consumed by the optimiser.

mod conv1d;
mod dense;
mod dropout;
mod flatten;
mod relu;
mod sum_pool;
mod tanh;

pub use conv1d::Conv1D;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use relu::ReLU;
pub use sum_pool::SumPool;
pub use tanh::Tanh;

use crate::matrix::Matrix;
use crate::quant::{QuantError, QuantLayer};

/// Whether a forward pass is part of training (enables dropout) or
/// inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: stochastic layers (dropout) are active and inputs are
    /// cached for the subsequent backward pass.
    Train,
    /// Inference: deterministic forward only.
    Eval,
}

/// A mutable view of one parameter tensor and its gradient accumulator.
pub struct Param<'a> {
    /// Flattened parameter values.
    pub value: &'a mut [f32],
    /// Flattened gradient accumulator (same length as `value`).
    pub grad: &'a mut [f32],
}

/// A differentiable layer.
///
/// Layers are `Send + Sync` so that immutable model replicas can be shared
/// across the worker threads of `deepmap-par` fan-outs; all mutation flows
/// through `&mut self` methods, so the bounds cost nothing.
pub trait Layer: Send + Sync {
    /// Computes the layer output. In [`Mode::Train`] the layer caches
    /// whatever it needs for [`Layer::backward`].
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix;

    /// Pure inference forward: identical output to
    /// `forward(input, Mode::Eval)` but without touching any cached state,
    /// so a shared `&self` model can serve many threads concurrently.
    fn infer(&self, input: &Matrix) -> Matrix;

    /// Given `dL/d(output)`, accumulates parameter gradients and returns
    /// `dL/d(input)`. Must be called after a [`Mode::Train`] forward pass on
    /// the same sample.
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;

    /// Parameter/gradient pairs (empty for stateless layers).
    fn params(&mut self) -> Vec<Param<'_>> {
        Vec::new()
    }

    /// Read-only views of the parameter tensors, in the same order as
    /// [`Layer::params`] (empty for stateless layers). Lets checkpointing
    /// and inference inspect weights without exclusive access to the model.
    fn param_values(&self) -> Vec<&[f32]> {
        Vec::new()
    }

    /// Clears accumulated gradients.
    fn zero_grad(&mut self) {}

    /// Deep-copies the layer's parameters and configuration into a fresh
    /// boxed layer. Transient training caches (stored activations, gradient
    /// accumulators) start empty/zeroed in the clone; the clone computes the
    /// same function as the original.
    fn clone_layer(&self) -> Box<dyn Layer>;

    /// Positions the layer's stochastic noise stream (dropout masks) at
    /// `nonce`. Deterministic data-parallel training uses this to give every
    /// sample the same mask regardless of which replica processes it.
    /// Default: no-op for noise-free layers.
    fn set_noise_nonce(&mut self, nonce: u64) {
        let _ = nonce;
    }

    /// Lowers the layer to its int8 inference form. Implementations must
    /// preserve inference semantics up to quantization error — stochastic
    /// layers lower to their *inference* behaviour (`Dropout` → identity).
    /// The default refuses ([`QuantError::NotQuantizable`]), so new layers
    /// opt in explicitly rather than silently serving wrong math.
    fn quantize(&self) -> Result<QuantLayer, QuantError> {
        Err(QuantError::NotQuantizable { layer: self.name() })
    }

    /// Human-readable layer name for debugging and model summaries.
    fn name(&self) -> &'static str;

    /// Number of trainable scalars.
    fn n_parameters(&self) -> usize {
        self.param_values().iter().map(|v| v.len()).sum()
    }
}
