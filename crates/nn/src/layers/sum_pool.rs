//! Summation readout.

use super::{Layer, Mode};
use crate::matrix::Matrix;
use crate::quant::{QuantError, QuantLayer};

/// Sums over sequence positions: `(L × C) → (1 × C)`.
///
/// This is the paper's summation layer (Eq. 7): the deep graph feature map
/// is the sum of the deep vertex feature maps, which makes the
/// representation invariant to vertex order and graph size, and makes
/// isomorphic graphs map to identical representations (Theorem 1).
#[derive(Default)]
pub struct SumPool {
    cached_len: usize,
}

impl SumPool {
    /// New pooling layer.
    pub fn new() -> Self {
        SumPool::default()
    }
}

impl Layer for SumPool {
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        if mode == Mode::Train {
            self.cached_len = input.rows();
        }
        input.sum_rows()
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        input.sum_rows()
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        assert!(
            self.cached_len > 0,
            "SumPool::backward requires a Train-mode forward first"
        );
        assert_eq!(
            grad_output.rows(),
            1,
            "SumPool::backward: gradient must be a single pooled row, got {}x{}",
            grad_output.rows(),
            grad_output.cols()
        );
        // d(sum)/d(row r) = I, so the gradient broadcasts to every position.
        let mut out = Matrix::zeros(self.cached_len, grad_output.cols());
        for r in 0..self.cached_len {
            out.row_mut(r).copy_from_slice(grad_output.row(0));
        }
        out
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(SumPool::new())
    }

    fn quantize(&self) -> Result<QuantLayer, QuantError> {
        Ok(QuantLayer::SumPool)
    }

    fn name(&self) -> &'static str {
        "SumPool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_sums_rows() {
        let mut l = SumPool::new();
        let x = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let y = l.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (1, 2));
        assert_eq!(y.as_slice(), &[9., 12.]);
    }

    #[test]
    fn forward_invariant_to_row_permutation() {
        let mut l = SumPool::new();
        let x = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let x_perm = Matrix::from_vec(3, 2, vec![5., 6., 1., 2., 3., 4.]);
        assert_eq!(l.forward(&x, Mode::Eval), l.forward(&x_perm, Mode::Eval));
    }

    #[test]
    fn backward_broadcasts() {
        let mut l = SumPool::new();
        let x = Matrix::from_vec(3, 2, vec![0.0; 6]);
        l.forward(&x, Mode::Train);
        let g = Matrix::from_vec(1, 2, vec![7., 8.]);
        let dx = l.backward(&g);
        assert_eq!(dx.shape(), (3, 2));
        for r in 0..3 {
            assert_eq!(dx.row(r), &[7., 8.]);
        }
    }
}
