//! Flatten layer.

use super::{Layer, Mode};
use crate::matrix::Matrix;
use crate::quant::{QuantError, QuantLayer};

/// Reshapes `(L × C)` to `(1 × L·C)` row-major.
///
/// Used for the paper's §6 alternative readout: *concatenating* the deep
/// vertex feature maps instead of summing them, which preserves the local
/// distribution at the cost of size-invariance.
#[derive(Default)]
pub struct Flatten {
    shape: (usize, usize),
}

impl Flatten {
    /// New flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        if mode == Mode::Train {
            self.shape = input.shape();
        }
        Matrix::from_vec(1, input.rows() * input.cols(), input.as_slice().to_vec())
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        Matrix::from_vec(1, input.rows() * input.cols(), input.as_slice().to_vec())
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let (rows, cols) = self.shape;
        assert_eq!(
            grad_output.as_slice().len(),
            rows * cols,
            "Flatten::backward requires a Train-mode forward first"
        );
        Matrix::from_vec(rows, cols, grad_output.as_slice().to_vec())
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Flatten::new())
    }

    fn quantize(&self) -> Result<QuantLayer, QuantError> {
        Ok(QuantLayer::Flatten)
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_reshapes_row_major() {
        let mut l = Flatten::new();
        let x = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let y = l.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (1, 6));
        assert_eq!(y.as_slice(), &[1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    fn backward_restores_shape() {
        let mut l = Flatten::new();
        let x = Matrix::from_vec(2, 3, vec![0.0; 6]);
        l.forward(&x, Mode::Train);
        let g = Matrix::from_vec(1, 6, vec![1., 2., 3., 4., 5., 6.]);
        let dx = l.backward(&g);
        assert_eq!(dx.shape(), (2, 3));
        assert_eq!(dx.get(1, 0), 4.0);
    }

    #[test]
    fn stateless() {
        let l = Flatten::new();
        assert_eq!(l.n_parameters(), 0);
    }
}
