//! Hyperbolic-tangent activation.

use super::{Layer, Mode};
use crate::matrix::Matrix;
use crate::quant::{QuantError, QuantLayer};

/// Elementwise `tanh(x)`.
///
/// Used by the DGCNN and DCNN baselines, whose original architectures are
/// tanh-activated (Zhang et al. 2018 §4.1; Atwood & Towsley 2016 §2).
#[derive(Default)]
pub struct Tanh {
    /// Cached outputs from the last Train forward (`d tanh = 1 - tanh²`).
    output: Option<Matrix>,
}

impl Tanh {
    /// New activation layer.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        let mut out = input.clone();
        for v in out.as_mut_slice() {
            *v = v.tanh();
        }
        if mode == Mode::Train {
            self.output = Some(out.clone());
        }
        out
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = input.clone();
        for v in out.as_mut_slice() {
            *v = v.tanh();
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let output = self
            .output
            .as_ref()
            .expect("Tanh::backward requires a Train-mode forward first");
        assert_eq!(grad_output.shape(), output.shape());
        let mut out = grad_output.clone();
        for (g, &y) in out.as_mut_slice().iter_mut().zip(output.as_slice()) {
            *g *= 1.0 - y * y;
        }
        out
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Tanh::new())
    }

    fn quantize(&self) -> Result<QuantLayer, QuantError> {
        Ok(QuantLayer::Tanh)
    }

    fn name(&self) -> &'static str {
        "Tanh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values() {
        let mut l = Tanh::new();
        let x = Matrix::from_vec(1, 3, vec![0.0, 100.0, -100.0]);
        let y = l.forward(&x, Mode::Eval);
        assert_eq!(y.get(0, 0), 0.0);
        assert!((y.get(0, 1) - 1.0).abs() < 1e-6);
        assert!((y.get(0, 2) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut l = Tanh::new();
        let x = Matrix::from_vec(1, 3, vec![-0.7, 0.2, 1.3]);
        l.forward(&x, Mode::Train);
        let g = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let dx = l.backward(&g);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut plus = x.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[i] -= eps;
            let mut probe = Tanh::new();
            let fp = probe.forward(&plus, Mode::Eval).get(0, i);
            let fm = probe.forward(&minus, Mode::Eval).get(0, i);
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - dx.get(0, i)).abs() < 1e-3, "{fd} vs {}", dx.get(0, i));
        }
    }

    #[test]
    fn stateless_params() {
        let l = Tanh::new();
        assert_eq!(l.n_parameters(), 0);
    }
}
