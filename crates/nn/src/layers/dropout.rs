//! Inverted dropout.

use super::{Layer, Mode};
use crate::matrix::Matrix;
use crate::quant::{QuantError, QuantLayer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: during training each activation is zeroed with
/// probability `rate` and survivors are scaled by `1 / (1 - rate)`, so
/// inference is the identity. The paper uses `rate = 0.5` before the softmax
/// layer (§4.1, Fig. 4).
///
/// The mask for each Train forward is drawn from a counter-based stream:
/// pass `k` uses a fresh `StdRng` seeded with `mix(seed, nonce_k)`, where the
/// nonce auto-increments after every Train forward and can be pinned
/// externally via [`Layer::set_noise_nonce`]. Pinning makes the mask a pure
/// function of `(seed, nonce)` — the property data-parallel training relies
/// on to stay bit-identical at any thread count.
pub struct Dropout {
    rate: f64,
    seed: u64,
    nonce: u64,
    mask: Option<Vec<f32>>,
}

/// SplitMix64 finalizer: decorrelates `(seed, nonce)` into an independent
/// stream seed so consecutive nonces don't produce correlated masks.
fn mix(seed: u64, nonce: u64) -> u64 {
    let mut z = seed ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Dropout {
    /// New dropout layer with drop probability `rate` and a deterministic
    /// seed for reproducible training runs.
    ///
    /// # Panics
    /// Panics unless `0 <= rate < 1`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
        Dropout {
            rate,
            seed,
            nonce: 0,
            mask: None,
        }
    }

    /// The configured drop probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        if mode == Mode::Eval || self.rate == 0.0 {
            if mode == Mode::Train {
                self.mask = Some(vec![1.0; input.as_slice().len()]);
                self.nonce = self.nonce.wrapping_add(1);
            }
            return input.clone();
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed, self.nonce));
        self.nonce = self.nonce.wrapping_add(1);
        let keep_scale = (1.0 / (1.0 - self.rate)) as f32;
        let mask: Vec<f32> = input
            .as_slice()
            .iter()
            .map(|_| {
                if rng.gen_bool(self.rate) {
                    0.0
                } else {
                    keep_scale
                }
            })
            .collect();
        let mut out = input.clone();
        for (o, &m) in out.as_mut_slice().iter_mut().zip(&mask) {
            *o *= m;
        }
        self.mask = Some(mask);
        out
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        input.clone()
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mask = self
            .mask
            .as_ref()
            .expect("Dropout::backward requires a Train-mode forward first");
        assert_eq!(grad_output.as_slice().len(), mask.len());
        let mut out = grad_output.clone();
        for (g, &m) in out.as_mut_slice().iter_mut().zip(mask) {
            *g *= m;
        }
        out
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Dropout {
            rate: self.rate,
            seed: self.seed,
            nonce: self.nonce,
            mask: None,
        })
    }

    fn set_noise_nonce(&mut self, nonce: u64) {
        self.nonce = nonce;
    }

    fn quantize(&self) -> Result<QuantLayer, QuantError> {
        Ok(QuantLayer::Identity)
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut l = Dropout::new(0.5, 42);
        let x = Matrix::from_vec(1, 5, vec![1., 2., 3., 4., 5.]);
        assert_eq!(l.forward(&x, Mode::Eval), x);
        assert_eq!(l.infer(&x), x);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut l = Dropout::new(0.5, 42);
        let n = 10_000;
        let x = Matrix::from_vec(1, n, vec![1.0; n]);
        let y = l.forward(&x, Mode::Train);
        let mean: f32 = y.as_slice().iter().sum::<f32>() / n as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Survivors are exactly scaled by 2.
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut l = Dropout::new(0.5, 7);
        let x = Matrix::from_vec(1, 8, vec![1.0; 8]);
        let y = l.forward(&x, Mode::Train);
        let g = Matrix::from_vec(1, 8, vec![1.0; 8]);
        let dx = l.backward(&g);
        for (o, d) in y.as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(o, d, "gradient mask must match forward mask");
        }
    }

    #[test]
    fn rate_zero_passthrough_in_train() {
        let mut l = Dropout::new(0.0, 1);
        let x = Matrix::from_vec(1, 4, vec![1., 2., 3., 4.]);
        assert_eq!(l.forward(&x, Mode::Train), x);
        let dx = l.backward(&x);
        assert_eq!(dx, x);
    }

    #[test]
    fn masks_differ_across_forwards_but_match_at_equal_nonce() {
        let x = Matrix::from_vec(1, 64, vec![1.0; 64]);
        let mut a = Dropout::new(0.5, 9);
        let y0 = a.forward(&x, Mode::Train);
        let y1 = a.forward(&x, Mode::Train);
        assert_ne!(y0, y1, "consecutive nonces must draw fresh masks");
        // A second layer pinned to the same (seed, nonce) reproduces pass 1.
        let mut b = Dropout::new(0.5, 9);
        b.set_noise_nonce(1);
        assert_eq!(b.forward(&x, Mode::Train), y1);
    }

    #[test]
    fn clone_computes_same_masks() {
        let x = Matrix::from_vec(1, 32, vec![1.0; 32]);
        let mut a = Dropout::new(0.5, 3);
        let mut b = a.clone_layer();
        assert_eq!(a.forward(&x, Mode::Train), b.forward(&x, Mode::Train));
    }

    #[test]
    #[should_panic(expected = "rate must be in [0, 1)")]
    fn invalid_rate_panics() {
        let _ = Dropout::new(1.0, 1);
    }
}
