//! One-dimensional convolution.

use super::{Layer, Mode, Param};
use crate::init::glorot_uniform;
use crate::matrix::Matrix;
use crate::quant::{QuantError, QuantLayer, QuantizedMatrix};
use rand::rngs::StdRng;

/// 1-D convolution over a `(length × channels)` input.
///
/// DeepMap's first layer (paper Fig. 4) slides a kernel of size `r` with
/// stride `r` over the concatenated receptive fields, so windows never
/// overlap; the 1×1 follow-up convolutions have `kernel = stride = 1`.
/// Arbitrary `kernel >= stride >= 1` combinations are supported for the
/// PATCHY-SAN and DGCNN baselines.
///
/// Implementation: im2col. Each output position `t` gathers rows
/// `t*stride .. t*stride + kernel` into one row of length `kernel × c_in`,
/// and the convolution becomes a single matmul with the `(kernel·c_in × f)`
/// weight matrix.
pub struct Conv1D {
    kernel: usize,
    stride: usize,
    c_in: usize,
    filters: usize,
    w: Matrix,
    b: Matrix,
    dw: Matrix,
    db: Matrix,
    /// Persistent im2col scratch, reused across Train-mode forwards so the
    /// per-sample hot loop stops allocating a fresh `(l_out × kernel·c_in)`
    /// matrix on every call. Valid for [`Conv1D::backward`] only when
    /// `cols_valid` is set.
    cols: Matrix,
    cols_valid: bool,
    cached_input_len: usize,
}

impl Conv1D {
    /// New Glorot-initialised convolution.
    ///
    /// # Panics
    /// Panics when `kernel == 0` or `stride == 0`.
    pub fn new(
        c_in: usize,
        filters: usize,
        kernel: usize,
        stride: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        let fan_in = kernel * c_in;
        Conv1D {
            kernel,
            stride,
            c_in,
            filters,
            w: glorot_uniform(fan_in, filters, fan_in, filters, rng),
            b: Matrix::zeros(1, filters),
            dw: Matrix::zeros(fan_in, filters),
            db: Matrix::zeros(1, filters),
            cols: Matrix::zeros(0, 0),
            cols_valid: false,
            cached_input_len: 0,
        }
    }

    /// Number of output positions for an input of `len` rows.
    pub fn output_len(&self, len: usize) -> usize {
        if len < self.kernel {
            0
        } else {
            (len - self.kernel) / self.stride + 1
        }
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Number of filters (output channels).
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Writes the im2col expansion of `input` into `cols`, whose shape must
    /// already be `(l_out × kernel·c_in)`. Every element is overwritten, so
    /// a reused buffer needs no clearing.
    fn im2col_into(kernel: usize, stride: usize, c_in: usize, input: &Matrix, cols: &mut Matrix) {
        for t in 0..cols.rows() {
            let dst = cols.row_mut(t);
            for k in 0..kernel {
                let src = input.row(t * stride + k);
                dst[k * c_in..(k + 1) * c_in].copy_from_slice(src);
            }
        }
    }

    fn im2col(&self, input: &Matrix) -> Matrix {
        let l_out = self.output_len(input.rows());
        let mut cols = Matrix::zeros(l_out, self.kernel * self.c_in);
        Self::im2col_into(self.kernel, self.stride, self.c_in, input, &mut cols);
        cols
    }

    fn check_input(&self, input: &Matrix) {
        assert_eq!(
            input.cols(),
            self.c_in,
            "Conv1D: input has {} channels, layer expects {}",
            input.cols(),
            self.c_in
        );
        assert!(
            input.rows() >= self.kernel,
            "Conv1D: input length {} shorter than kernel {}",
            input.rows(),
            self.kernel
        );
    }

    fn add_bias(&self, out: &mut Matrix) {
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (o, &b) in row.iter_mut().zip(self.b.as_slice()) {
                *o += b;
            }
        }
    }
}

impl Layer for Conv1D {
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        self.check_input(input);
        if mode != Mode::Train {
            // Eval leaves the Train scratch untouched so a pending backward
            // still sees the columns of the last Train-mode forward.
            return self.infer(input);
        }
        let l_out = self.output_len(input.rows());
        let width = self.kernel * self.c_in;
        if self.cols.shape() != (l_out, width) {
            self.cols = Matrix::zeros(l_out, width);
        }
        Self::im2col_into(self.kernel, self.stride, self.c_in, input, &mut self.cols);
        let mut out = self.cols.matmul(&self.w);
        self.add_bias(&mut out);
        self.cached_input_len = input.rows();
        self.cols_valid = true;
        out
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        self.check_input(input);
        let cols = self.im2col(input);
        let mut out = cols.matmul(&self.w);
        self.add_bias(&mut out);
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        assert!(
            self.cols_valid,
            "Conv1D::backward requires a Train-mode forward first"
        );
        let cols = &self.cols;
        assert_eq!(
            grad_output.rows(),
            cols.rows(),
            "Conv1D::backward: gradient has {} rows, cached forward produced {}",
            grad_output.rows(),
            cols.rows()
        );
        // dW += colsᵀ · dY ; db += column-sum(dY).
        self.dw.add_assign(&cols.t_matmul(grad_output));
        self.db.add_assign(&grad_output.sum_rows());
        // d(cols) = dY · Wᵀ, then scatter back (col2im). Overlapping windows
        // accumulate, which is exactly the sum rule of differentiation.
        let dcols = grad_output.matmul_t(&self.w);
        let mut dinput = Matrix::zeros(self.cached_input_len, self.c_in);
        for t in 0..dcols.rows() {
            let src = dcols.row(t);
            for k in 0..self.kernel {
                let dst = dinput.row_mut(t * self.stride + k);
                for (d, &s) in dst.iter_mut().zip(&src[k * self.c_in..(k + 1) * self.c_in]) {
                    *d += s;
                }
            }
        }
        dinput
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        vec![
            Param {
                value: self.w.as_mut_slice(),
                grad: self.dw.as_mut_slice(),
            },
            Param {
                value: self.b.as_mut_slice(),
                grad: self.db.as_mut_slice(),
            },
        ]
    }

    fn param_values(&self) -> Vec<&[f32]> {
        vec![self.w.as_slice(), self.b.as_slice()]
    }

    fn zero_grad(&mut self) {
        self.dw.fill_zero();
        self.db.fill_zero();
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Conv1D {
            kernel: self.kernel,
            stride: self.stride,
            c_in: self.c_in,
            filters: self.filters,
            w: self.w.clone(),
            b: self.b.clone(),
            dw: Matrix::zeros(self.dw.rows(), self.dw.cols()),
            db: Matrix::zeros(self.db.rows(), self.db.cols()),
            cols: Matrix::zeros(0, 0),
            cols_valid: false,
            cached_input_len: 0,
        })
    }

    fn quantize(&self) -> Result<QuantLayer, QuantError> {
        Ok(QuantLayer::Conv1D {
            kernel: self.kernel,
            stride: self.stride,
            c_in: self.c_in,
            w: QuantizedMatrix::quantize(&self.w)?,
            b: self.b.as_slice().to_vec(),
        })
    }

    fn name(&self) -> &'static str {
        "Conv1D"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn output_len_math() {
        let rng = &mut StdRng::seed_from_u64(1);
        let c = Conv1D::new(4, 8, 3, 3, rng);
        assert_eq!(c.output_len(9), 3);
        assert_eq!(c.output_len(10), 3); // trailing partial window dropped
        assert_eq!(c.output_len(2), 0);
        let overlapping = Conv1D::new(4, 8, 3, 1, rng);
        assert_eq!(overlapping.output_len(9), 7);
    }

    #[test]
    fn forward_known_values_nonoverlapping() {
        let mut c = Conv1D::new(1, 1, 2, 2, &mut StdRng::seed_from_u64(1));
        {
            let mut ps = c.params();
            ps[0].value.copy_from_slice(&[1.0, 2.0]); // kernel weights
            ps[1].value.copy_from_slice(&[0.5]); // bias
        }
        let x = Matrix::from_vec(4, 1, vec![1., 2., 3., 4.]);
        let y = c.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (2, 1));
        // windows (1,2) and (3,4): 1*1+2*2+0.5 = 5.5 ; 3*1+4*2+0.5 = 11.5
        assert_eq!(y.as_slice(), &[5.5, 11.5]);
    }

    #[test]
    fn kernel_one_is_positionwise_dense() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = Conv1D::new(3, 2, 1, 1, &mut rng);
        let x = Matrix::from_vec(5, 3, (0..15).map(|v| v as f32 / 3.0).collect());
        let y = c.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (5, 2));
        // Each row maps independently: permuting input rows permutes outputs.
        let x_rev = Matrix::from_vec(
            5,
            3,
            (0..5)
                .rev()
                .flat_map(|r| x.row(r).to_vec())
                .collect::<Vec<_>>(),
        );
        let y_rev = c.forward(&x_rev, Mode::Eval);
        for r in 0..5 {
            assert_eq!(y.row(r), y_rev.row(4 - r));
        }
    }

    #[test]
    fn overlapping_backward_accumulates() {
        // kernel 2 stride 1 on length 3: middle input appears in 2 windows.
        let mut c = Conv1D::new(1, 1, 2, 1, &mut StdRng::seed_from_u64(1));
        {
            let mut ps = c.params();
            ps[0].value.copy_from_slice(&[1.0, 1.0]);
            ps[1].value.copy_from_slice(&[0.0]);
        }
        let x = Matrix::from_vec(3, 1, vec![1., 1., 1.]);
        c.forward(&x, Mode::Train);
        let g = Matrix::from_vec(2, 1, vec![1., 1.]);
        let dx = c.backward(&g);
        assert_eq!(dx.as_slice(), &[1., 2., 1.]);
    }

    #[test]
    fn infer_matches_eval_forward() {
        let mut c = Conv1D::new(2, 3, 2, 2, &mut StdRng::seed_from_u64(5));
        let x = Matrix::from_vec(6, 2, (0..12).map(|v| v as f32).collect());
        let eval = c.forward(&x, Mode::Eval);
        assert_eq!(c.infer(&x), eval);
    }

    #[test]
    fn eval_forward_does_not_clobber_train_columns() {
        let mut c = Conv1D::new(1, 1, 2, 2, &mut StdRng::seed_from_u64(1));
        {
            let mut ps = c.params();
            ps[0].value.copy_from_slice(&[1.0, 1.0]);
            ps[1].value.copy_from_slice(&[0.0]);
        }
        let x = Matrix::from_vec(4, 1, vec![1., 2., 3., 4.]);
        c.forward(&x, Mode::Train);
        // An interleaved Eval pass on different data must not disturb the
        // cached Train columns.
        let other = Matrix::from_vec(4, 1, vec![10., 20., 30., 40.]);
        c.forward(&other, Mode::Eval);
        c.backward(&Matrix::from_vec(2, 1, vec![1., 1.]));
        let ps = c.params();
        assert_eq!(ps[0].grad, &[4.0, 6.0], "dW must come from the Train input");
    }

    #[test]
    fn scratch_buffer_reused_across_same_shape_forwards() {
        let mut c = Conv1D::new(1, 2, 2, 2, &mut StdRng::seed_from_u64(2));
        let a = Matrix::from_vec(4, 1, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(4, 1, vec![5., 6., 7., 8.]);
        let ya = c.forward(&a, Mode::Train);
        let yb = c.forward(&b, Mode::Train);
        // Second pass fully overwrites the scratch: results are independent.
        assert_ne!(ya, yb);
        assert_eq!(c.forward(&a, Mode::Train), ya);
    }

    #[test]
    #[should_panic(expected = "shorter than kernel")]
    fn input_shorter_than_kernel_panics() {
        let mut c = Conv1D::new(1, 1, 4, 4, &mut StdRng::seed_from_u64(1));
        c.forward(&Matrix::zeros(2, 1), Mode::Eval);
    }

    #[test]
    fn n_parameters() {
        let c = Conv1D::new(3, 8, 5, 5, &mut StdRng::seed_from_u64(1));
        assert_eq!(c.n_parameters(), 5 * 3 * 8 + 8);
        assert_eq!(c.param_values().len(), 2);
    }
}
