//! One-dimensional convolution.

use super::{Layer, Mode, Param};
use crate::init::glorot_uniform;
use crate::matrix::Matrix;
use rand::rngs::StdRng;

/// 1-D convolution over a `(length × channels)` input.
///
/// DeepMap's first layer (paper Fig. 4) slides a kernel of size `r` with
/// stride `r` over the concatenated receptive fields, so windows never
/// overlap; the 1×1 follow-up convolutions have `kernel = stride = 1`.
/// Arbitrary `kernel >= stride >= 1` combinations are supported for the
/// PATCHY-SAN and DGCNN baselines.
///
/// Implementation: im2col. Each output position `t` gathers rows
/// `t*stride .. t*stride + kernel` into one row of length `kernel × c_in`,
/// and the convolution becomes a single matmul with the `(kernel·c_in × f)`
/// weight matrix.
pub struct Conv1D {
    kernel: usize,
    stride: usize,
    c_in: usize,
    filters: usize,
    w: Matrix,
    b: Matrix,
    dw: Matrix,
    db: Matrix,
    cached_cols: Option<Matrix>,
    cached_input_len: usize,
}

impl Conv1D {
    /// New Glorot-initialised convolution.
    ///
    /// # Panics
    /// Panics when `kernel == 0` or `stride == 0`.
    pub fn new(
        c_in: usize,
        filters: usize,
        kernel: usize,
        stride: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        let fan_in = kernel * c_in;
        Conv1D {
            kernel,
            stride,
            c_in,
            filters,
            w: glorot_uniform(fan_in, filters, fan_in, filters, rng),
            b: Matrix::zeros(1, filters),
            dw: Matrix::zeros(fan_in, filters),
            db: Matrix::zeros(1, filters),
            cached_cols: None,
            cached_input_len: 0,
        }
    }

    /// Number of output positions for an input of `len` rows.
    pub fn output_len(&self, len: usize) -> usize {
        if len < self.kernel {
            0
        } else {
            (len - self.kernel) / self.stride + 1
        }
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Number of filters (output channels).
    pub fn filters(&self) -> usize {
        self.filters
    }

    fn im2col(&self, input: &Matrix) -> Matrix {
        let l_out = self.output_len(input.rows());
        let mut cols = Matrix::zeros(l_out, self.kernel * self.c_in);
        for t in 0..l_out {
            let dst = cols.row_mut(t);
            for k in 0..self.kernel {
                let src = input.row(t * self.stride + k);
                dst[k * self.c_in..(k + 1) * self.c_in].copy_from_slice(src);
            }
        }
        cols
    }
}

impl Layer for Conv1D {
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        assert_eq!(
            input.cols(),
            self.c_in,
            "Conv1D: input has {} channels, layer expects {}",
            input.cols(),
            self.c_in
        );
        assert!(
            input.rows() >= self.kernel,
            "Conv1D: input length {} shorter than kernel {}",
            input.rows(),
            self.kernel
        );
        let cols = self.im2col(input);
        let mut out = cols.matmul(&self.w);
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (o, &b) in row.iter_mut().zip(self.b.as_slice()) {
                *o += b;
            }
        }
        if mode == Mode::Train {
            self.cached_input_len = input.rows();
            self.cached_cols = Some(cols);
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let cols = self
            .cached_cols
            .as_ref()
            .expect("Conv1D::backward requires a Train-mode forward first");
        assert_eq!(grad_output.rows(), cols.rows());
        // dW += colsᵀ · dY ; db += column-sum(dY).
        self.dw.add_assign(&cols.t_matmul(grad_output));
        self.db.add_assign(&grad_output.sum_rows());
        // d(cols) = dY · Wᵀ, then scatter back (col2im). Overlapping windows
        // accumulate, which is exactly the sum rule of differentiation.
        let dcols = grad_output.matmul_t(&self.w);
        let mut dinput = Matrix::zeros(self.cached_input_len, self.c_in);
        for t in 0..dcols.rows() {
            let src = dcols.row(t);
            for k in 0..self.kernel {
                let dst = dinput.row_mut(t * self.stride + k);
                for (d, &s) in dst.iter_mut().zip(&src[k * self.c_in..(k + 1) * self.c_in]) {
                    *d += s;
                }
            }
        }
        dinput
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        vec![
            Param {
                value: self.w.as_mut_slice(),
                grad: self.dw.as_mut_slice(),
            },
            Param {
                value: self.b.as_mut_slice(),
                grad: self.db.as_mut_slice(),
            },
        ]
    }

    fn param_values(&self) -> Vec<&[f32]> {
        vec![self.w.as_slice(), self.b.as_slice()]
    }

    fn zero_grad(&mut self) {
        self.dw.fill_zero();
        self.db.fill_zero();
    }

    fn name(&self) -> &'static str {
        "Conv1D"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn output_len_math() {
        let rng = &mut StdRng::seed_from_u64(1);
        let c = Conv1D::new(4, 8, 3, 3, rng);
        assert_eq!(c.output_len(9), 3);
        assert_eq!(c.output_len(10), 3); // trailing partial window dropped
        assert_eq!(c.output_len(2), 0);
        let overlapping = Conv1D::new(4, 8, 3, 1, rng);
        assert_eq!(overlapping.output_len(9), 7);
    }

    #[test]
    fn forward_known_values_nonoverlapping() {
        let mut c = Conv1D::new(1, 1, 2, 2, &mut StdRng::seed_from_u64(1));
        {
            let mut ps = c.params();
            ps[0].value.copy_from_slice(&[1.0, 2.0]); // kernel weights
            ps[1].value.copy_from_slice(&[0.5]); // bias
        }
        let x = Matrix::from_vec(4, 1, vec![1., 2., 3., 4.]);
        let y = c.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (2, 1));
        // windows (1,2) and (3,4): 1*1+2*2+0.5 = 5.5 ; 3*1+4*2+0.5 = 11.5
        assert_eq!(y.as_slice(), &[5.5, 11.5]);
    }

    #[test]
    fn kernel_one_is_positionwise_dense() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = Conv1D::new(3, 2, 1, 1, &mut rng);
        let x = Matrix::from_vec(5, 3, (0..15).map(|v| v as f32 / 3.0).collect());
        let y = c.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (5, 2));
        // Each row maps independently: permuting input rows permutes outputs.
        let x_rev = Matrix::from_vec(
            5,
            3,
            (0..5)
                .rev()
                .flat_map(|r| x.row(r).to_vec())
                .collect::<Vec<_>>(),
        );
        let y_rev = c.forward(&x_rev, Mode::Eval);
        for r in 0..5 {
            assert_eq!(y.row(r), y_rev.row(4 - r));
        }
    }

    #[test]
    fn overlapping_backward_accumulates() {
        // kernel 2 stride 1 on length 3: middle input appears in 2 windows.
        let mut c = Conv1D::new(1, 1, 2, 1, &mut StdRng::seed_from_u64(1));
        {
            let mut ps = c.params();
            ps[0].value.copy_from_slice(&[1.0, 1.0]);
            ps[1].value.copy_from_slice(&[0.0]);
        }
        let x = Matrix::from_vec(3, 1, vec![1., 1., 1.]);
        c.forward(&x, Mode::Train);
        let g = Matrix::from_vec(2, 1, vec![1., 1.]);
        let dx = c.backward(&g);
        assert_eq!(dx.as_slice(), &[1., 2., 1.]);
    }

    #[test]
    #[should_panic(expected = "shorter than kernel")]
    fn input_shorter_than_kernel_panics() {
        let mut c = Conv1D::new(1, 1, 4, 4, &mut StdRng::seed_from_u64(1));
        c.forward(&Matrix::zeros(2, 1), Mode::Eval);
    }

    #[test]
    fn n_parameters() {
        let c = Conv1D::new(3, 8, 5, 5, &mut StdRng::seed_from_u64(1));
        assert_eq!(c.n_parameters(), 5 * 3 * 8 + 8);
        assert_eq!(c.param_values().len(), 2);
    }
}
