//! Fully-connected layer.

use super::{Layer, Mode, Param};
use crate::init::glorot_uniform;
use crate::matrix::Matrix;
use crate::quant::{QuantError, QuantLayer, QuantizedMatrix};
use rand::rngs::StdRng;

/// A fully-connected (affine) layer: `Y = X · W + b`, applied row-wise.
///
/// `X` is `(rows × in_dim)`; `W` is `(in_dim × out_dim)`; `b` broadcasts
/// over rows. DeepMap's dense head operates on the single pooled row; the
/// 1×1 convolutions of Fig. 4 are also expressible as `Dense` applied per
/// position, but we keep them as `Conv1D` to match the paper.
pub struct Dense {
    w: Matrix,
    b: Matrix,
    dw: Matrix,
    db: Matrix,
    cached_input: Option<Matrix>,
}

impl Dense {
    /// New Glorot-initialised layer mapping `in_dim` to `out_dim` features.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Dense {
            w: glorot_uniform(in_dim, out_dim, in_dim, out_dim, rng),
            b: Matrix::zeros(1, out_dim),
            dw: Matrix::zeros(in_dim, out_dim),
            db: Matrix::zeros(1, out_dim),
            cached_input: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    fn affine(&self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.w.rows(),
            "Dense: input has {} channels, layer expects {}",
            input.cols(),
            self.w.rows()
        );
        let mut out = input.matmul(&self.w);
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (o, &b) in row.iter_mut().zip(self.b.as_slice()) {
                *o += b;
            }
        }
        out
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        let out = self.affine(input);
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        self.affine(input)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .as_ref()
            .expect("Dense::backward requires a Train-mode forward first");
        // dW += Xᵀ · dY ; db += column-sum(dY) ; dX = dY · Wᵀ.
        self.dw.add_assign(&input.t_matmul(grad_output));
        self.db.add_assign(&grad_output.sum_rows());
        grad_output.matmul_t(&self.w)
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        vec![
            Param {
                value: self.w.as_mut_slice(),
                grad: self.dw.as_mut_slice(),
            },
            Param {
                value: self.b.as_mut_slice(),
                grad: self.db.as_mut_slice(),
            },
        ]
    }

    fn param_values(&self) -> Vec<&[f32]> {
        vec![self.w.as_slice(), self.b.as_slice()]
    }

    fn zero_grad(&mut self) {
        self.dw.fill_zero();
        self.db.fill_zero();
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Dense {
            w: self.w.clone(),
            b: self.b.clone(),
            dw: Matrix::zeros(self.dw.rows(), self.dw.cols()),
            db: Matrix::zeros(self.db.rows(), self.db.cols()),
            cached_input: None,
        })
    }

    fn quantize(&self) -> Result<QuantLayer, QuantError> {
        Ok(QuantLayer::Dense {
            w: QuantizedMatrix::quantize(&self.w)?,
            b: self.b.as_slice().to_vec(),
        })
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn layer() -> Dense {
        Dense::new(3, 2, &mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut l = layer();
        // Overwrite params with known values.
        {
            let mut ps = l.params();
            ps[0].value.copy_from_slice(&[1., 0., 0., 1., 0., 0.]); // W: 3x2
            ps[1].value.copy_from_slice(&[0.5, -0.5]); // b
        }
        let x = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let y = l.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (2, 2));
        // y[0] = [1*1 + 2*0 + 3*0 + 0.5, 1*0 + 2*1 + 3*0 - 0.5] = [1.5, 1.5]
        assert_eq!(y.row(0), &[1.5, 1.5]);
        assert_eq!(y.row(1), &[4.5, 4.5]);
    }

    #[test]
    fn backward_accumulates_over_samples() {
        let mut l = layer();
        let x = Matrix::from_vec(1, 3, vec![1., 1., 1.]);
        let g = Matrix::from_vec(1, 2, vec![1., 1.]);
        l.forward(&x, Mode::Train);
        l.backward(&g);
        l.forward(&x, Mode::Train);
        l.backward(&g);
        let ps = l.params();
        // dW entries are 2 * x_i * g_j = 2.
        assert!(ps[0].grad.iter().all(|&v| (v - 2.0).abs() < 1e-6));
        assert!(ps[1].grad.iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn zero_grad_clears() {
        let mut l = layer();
        let x = Matrix::from_vec(1, 3, vec![1., 1., 1.]);
        l.forward(&x, Mode::Train);
        l.backward(&Matrix::from_vec(1, 2, vec![1., 1.]));
        l.zero_grad();
        let ps = l.params();
        assert!(ps[0].grad.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "requires a Train-mode forward")]
    fn backward_without_forward_panics() {
        let mut l = layer();
        l.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn n_parameters() {
        let l = layer();
        assert_eq!(l.n_parameters(), 3 * 2 + 2);
        assert_eq!(l.param_values().len(), 2);
    }
}
