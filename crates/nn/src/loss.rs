//! Softmax + cross-entropy loss.

use crate::matrix::Matrix;

/// Numerically-stable softmax of a `1 × n` logit row.
pub fn softmax(logits: &Matrix) -> Matrix {
    assert_eq!(logits.rows(), 1, "softmax expects a single logit row");
    let row = logits.row(0);
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Matrix::row_vector(exps.into_iter().map(|e| e / sum).collect())
}

/// Cross-entropy of a softmax output against an integer target class.
///
/// Returns `(loss, grad)` where `grad = softmax(logits) - onehot(target)` is
/// the gradient of the loss with respect to the *logits* — the well-known
/// fused softmax/cross-entropy derivative, which avoids ever differentiating
/// through the softmax alone.
///
/// # Panics
/// Panics if `target >= logits.cols()`.
pub fn softmax_cross_entropy(logits: &Matrix, target: usize) -> (f32, Matrix) {
    assert!(target < logits.cols(), "target class out of range");
    let probs = softmax(logits);
    let p_target = probs.get(0, target).max(1e-12);
    let loss = -p_target.ln();
    let mut grad = probs;
    let g = grad.get(0, target) - 1.0;
    grad.set(0, target, g);
    (loss, grad)
}

/// Predicted class: argmax of the logits (softmax is monotone so it can be
/// skipped at inference time).
pub fn predict_class(logits: &Matrix) -> usize {
    logits.argmax_row(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let l = Matrix::row_vector(vec![1.0, 2.0, 3.0]);
        let p = softmax(&l);
        let sum: f32 = p.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p.get(0, 2) > p.get(0, 1));
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let l = Matrix::row_vector(vec![1000.0, 1000.0]);
        let p = softmax(&l);
        assert!((p.get(0, 0) - 0.5).abs() < 1e-6);
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn uniform_logits_give_ln_n_loss() {
        let l = Matrix::row_vector(vec![0.0; 4]);
        let (loss, _) = softmax_cross_entropy(&l, 2);
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = vec![0.3, -1.2, 2.0, 0.7];
        let target = 1;
        let (_, grad) = softmax_cross_entropy(&Matrix::row_vector(logits.clone()), target);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut plus = logits.clone();
            plus[i] += eps;
            let mut minus = logits.clone();
            minus[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&Matrix::row_vector(plus), target);
            let (lm, _) = softmax_cross_entropy(&Matrix::row_vector(minus), target);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad.get(0, i)).abs() < 1e-3,
                "component {i}: fd {fd} vs analytic {}",
                grad.get(0, i)
            );
        }
    }

    #[test]
    fn grad_sums_to_zero() {
        let (_, grad) = softmax_cross_entropy(&Matrix::row_vector(vec![1.0, 2.0, 3.0]), 0);
        let sum: f32 = grad.as_slice().iter().sum();
        assert!(sum.abs() < 1e-6);
    }

    #[test]
    fn predict_class_is_argmax() {
        let l = Matrix::row_vector(vec![0.1, 5.0, -2.0]);
        assert_eq!(predict_class(&l), 1);
    }

    #[test]
    #[should_panic(expected = "target class out of range")]
    fn bad_target_panics() {
        softmax_cross_entropy(&Matrix::row_vector(vec![0.0, 0.0]), 5);
    }
}
