//! Model weight persistence.
//!
//! Trained models are flat lists of `f32` tensors in a stable (layer,
//! tensor) order, so persistence is a small framed binary format:
//!
//! ```text
//! magic "DMW1" | u32 tensor count | per tensor: u32 len | len × f32 (LE)
//! ```
//!
//! The architecture itself is *not* serialised — callers rebuild the model
//! from its configuration (which is tiny and deterministic) and load the
//! weights into it, the usual checkpoint convention.

use crate::model::Sequential;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: &[u8; 4] = b"DMW1";

/// Errors from weight (de)serialisation.
#[derive(Debug, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer does not start with the expected magic.
    BadMagic,
    /// The buffer ended before the declared data.
    Truncated,
    /// The checkpoint's tensor shapes do not match the model's.
    ShapeMismatch {
        /// Tensor index that disagreed.
        tensor: usize,
        /// Length stored in the checkpoint.
        stored: usize,
        /// Length the model expects.
        expected: usize,
    },
    /// Tensor count differs between checkpoint and model.
    TensorCountMismatch {
        /// Count stored in the checkpoint.
        stored: usize,
        /// Count the model expects.
        expected: usize,
    },
    /// The buffer contains bytes beyond the declared data. A silently
    /// oversized payload usually means a corrupt frame or a concatenated
    /// file, so it is rejected rather than ignored.
    TrailingBytes {
        /// Number of unexpected bytes after the last tensor.
        extra: usize,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a DMW1 checkpoint"),
            PersistError::Truncated => write!(f, "checkpoint truncated"),
            PersistError::ShapeMismatch {
                tensor,
                stored,
                expected,
            } => write!(
                f,
                "tensor {tensor}: checkpoint has {stored} scalars, model expects {expected}"
            ),
            PersistError::TensorCountMismatch { stored, expected } => write!(
                f,
                "checkpoint has {stored} tensors, model expects {expected}"
            ),
            PersistError::TrailingBytes { extra } => {
                write!(
                    f,
                    "checkpoint has {extra} trailing bytes after the last tensor"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Serialises the model's parameters. Takes `&Sequential` so a model shared
/// read-only across inference workers can still be checkpointed.
pub fn save_weights(model: &Sequential) -> Bytes {
    let params = model.param_values();
    let total: usize = params.iter().map(|v| v.len()).sum();
    let mut buf = BytesMut::with_capacity(8 + 4 * params.len() + 4 * total);
    buf.put_slice(MAGIC);
    buf.put_u32_le(params.len() as u32);
    for values in &params {
        buf.put_u32_le(values.len() as u32);
        for &w in values.iter() {
            buf.put_f32_le(w);
        }
    }
    buf.freeze()
}

/// Loads parameters saved by [`save_weights`] into a model of the same
/// architecture.
///
/// # Errors
/// Any structural disagreement between the checkpoint and the model is
/// rejected before any weight is written.
pub fn load_weights(model: &mut Sequential, data: &[u8]) -> Result<(), PersistError> {
    let mut cursor = data;
    if cursor.remaining() < 8 {
        return Err(PersistError::Truncated);
    }
    let mut magic = [0u8; 4];
    cursor.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let count = cursor.get_u32_le() as usize;
    let mut params = model.params();
    if count != params.len() {
        return Err(PersistError::TensorCountMismatch {
            stored: count,
            expected: params.len(),
        });
    }
    // First pass: validate the frame without mutating.
    let mut probe = cursor;
    for (i, p) in params.iter().enumerate() {
        if probe.remaining() < 4 {
            return Err(PersistError::Truncated);
        }
        let len = probe.get_u32_le() as usize;
        if len != p.value.len() {
            return Err(PersistError::ShapeMismatch {
                tensor: i,
                stored: len,
                expected: p.value.len(),
            });
        }
        if probe.remaining() < 4 * len {
            return Err(PersistError::Truncated);
        }
        probe.advance(4 * len);
    }
    if probe.remaining() != 0 {
        return Err(PersistError::TrailingBytes {
            extra: probe.remaining(),
        });
    }
    // Second pass: write.
    for p in params.iter_mut() {
        let _len = cursor.get_u32_le();
        for w in p.value.iter_mut() {
            *w = cursor.get_f32_le();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Mode, ReLU};
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .push(Box::new(Dense::new(4, 6, &mut rng)))
            .push(Box::new(ReLU::new()))
            .push(Box::new(Dense::new(6, 2, &mut rng)))
    }

    #[test]
    fn round_trip_restores_outputs() {
        let mut original = model(1);
        let x = Matrix::from_vec(1, 4, vec![0.3, -0.2, 0.9, 0.1]);
        let expected = original.forward(&x, Mode::Eval);
        let blob = save_weights(&original);

        let mut restored = model(999); // different init
        assert_ne!(restored.forward(&x, Mode::Eval), expected);
        load_weights(&mut restored, &blob).unwrap();
        assert_eq!(restored.forward(&x, Mode::Eval), expected);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut m = model(1);
        assert_eq!(
            load_weights(&mut m, b"NOPE1234"),
            Err(PersistError::BadMagic)
        );
    }

    #[test]
    fn rejects_truncation() {
        let mut m = model(1);
        let blob = save_weights(&m);
        let cut = &blob[..blob.len() / 2];
        assert_eq!(load_weights(&mut m, cut), Err(PersistError::Truncated));
        assert_eq!(
            load_weights(&mut m, &blob[..3]),
            Err(PersistError::Truncated)
        );
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut m = model(1);
        let x = Matrix::from_vec(1, 4, vec![0.7; 4]);
        let before = m.forward(&x, Mode::Eval);
        let mut oversized = save_weights(&m).to_vec();
        oversized.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
        assert_eq!(
            load_weights(&mut m, &oversized),
            Err(PersistError::TrailingBytes { extra: 3 })
        );
        // Rejection happens before any weight is written.
        assert_eq!(m.forward(&x, Mode::Eval), before);
    }

    #[test]
    fn rejects_doubled_payload() {
        // Two checkpoints concatenated: structurally valid prefix, junk tail.
        let mut m = model(1);
        let blob = save_weights(&m);
        let mut doubled = blob.to_vec();
        doubled.extend_from_slice(&blob);
        let err = load_weights(&mut m, &doubled).unwrap_err();
        assert_eq!(err, PersistError::TrailingBytes { extra: blob.len() });
    }

    #[test]
    fn rejects_corrupt_magic_variants() {
        let mut m = model(1);
        let blob = save_weights(&m);
        // Flip one magic byte of an otherwise valid checkpoint.
        let mut corrupt = blob.to_vec();
        corrupt[0] ^= 0xFF;
        assert_eq!(load_weights(&mut m, &corrupt), Err(PersistError::BadMagic));
        // Empty and sub-header payloads are truncation, not magic errors.
        assert_eq!(load_weights(&mut m, &[]), Err(PersistError::Truncated));
        assert_eq!(load_weights(&mut m, b"DMW1"), Err(PersistError::Truncated));
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let small = model(1);
        let blob = save_weights(&small);
        let mut rng = StdRng::seed_from_u64(2);
        let mut bigger = Sequential::new()
            .push(Box::new(Dense::new(4, 7, &mut rng)))
            .push(Box::new(Dense::new(7, 2, &mut rng)));
        let err = load_weights(&mut bigger, &blob).unwrap_err();
        assert!(matches!(err, PersistError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn validation_happens_before_mutation() {
        let mut m = model(1);
        let x = Matrix::from_vec(1, 4, vec![1.0; 4]);
        let before = m.forward(&x, Mode::Eval);
        let blob = save_weights(&m);
        // Corrupt the tail so the last tensor is truncated.
        let cut = &blob[..blob.len() - 2];
        let _ = load_weights(&mut m, cut).unwrap_err();
        assert_eq!(m.forward(&x, Mode::Eval), before, "model must be untouched");
    }
}
