//! Minimal CPU neural-network substrate for the DeepMap reproduction.
//!
//! The paper trains its models with Keras/TensorFlow; this crate replaces
//! that stack with a small, exact-gradient implementation of precisely the
//! pieces the paper's architectures need (Fig. 4 and the baseline GNNs):
//!
//! - [`matrix::Matrix`] — dense row-major `f32` matrices with the matmul
//!   variants backprop needs.
//! - [`layers`] — `Conv1D` (stride = kernel for DeepMap's non-overlapping
//!   receptive fields, arbitrary stride supported), `Dense`, `ReLU`,
//!   `Dropout`, `SumPool` (the paper's Eq. 7 summation readout), and the
//!   [`layers::Layer`] trait with hand-derived backward passes.
//! - [`loss`] — softmax + cross-entropy with its gradient.
//! - [`optim`] — RMSProp (the paper's optimiser) and a
//!   reduce-LR-on-plateau scheduler (factor 0.5, patience 5; paper §5.1).
//! - [`model`] — [`model::Sequential`] container.
//! - [`quant`] — opt-in int8 lowering of trained models for serving
//!   (per-channel symmetric weights, exact `i32` accumulation, `QNT1`
//!   serialization). Training math is never quantized.
//! - [`train`] — mini-batch trainer with per-epoch statistics.
//! - [`init`] — Glorot/Xavier initialisation from a seeded RNG.
//! - [`persist`] — framed binary checkpointing of model weights.
//!
//! Every gradient in the crate is validated against central finite
//! differences in the test suite (`tests/grad_check.rs`).

#![deny(missing_docs)]

pub mod init;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod model;
pub mod optim;
pub mod persist;
pub mod quant;
pub mod train;

pub use matrix::Matrix;
pub use model::Sequential;
pub use quant::QuantModel;
