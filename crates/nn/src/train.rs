//! Mini-batch training loop with divergence detection.
//!
//! [`fit`] is the infallible entry point used by code that trusts its
//! inputs; [`try_fit`] is the robust variant: it validates the training
//! set, watches every mini-batch for non-finite losses, exploding
//! gradients, and corrupted parameters, and aborts with a typed
//! [`TrainError`] instead of silently training on garbage. The
//! cross-validation harness retries aborted folds with a halved learning
//! rate and a reseeded initialisation (see
//! `deepmap_core::pipeline::DeepMap::try_fit_split`).
//!
//! # Data parallelism and determinism
//!
//! Each mini-batch fans its samples out over the shared `deepmap-par` pool:
//! every worker runs forward/backward on its own model replica, and the
//! per-sample gradient contributions are then reduced on the calling thread
//! **in sample order**. Because a replica's gradients are zeroed before each
//! sample, the reduction performs exactly the additions the sequential loop
//! would — same values, same order — so losses, gradients, and learned
//! weights are bit-identical at any thread count (`DEEPMAP_THREADS=1` and
//! `=8` produce the same model). Dropout masks are pinned to the sample's
//! position in the epoch via [`Sequential::set_noise_nonce`], never to the
//! worker that happened to process it.

use crate::matrix::Matrix;
use crate::model::Sequential;
use crate::optim::{PlateauScheduler, RmsProp};
use deepmap_obs::Stopwatch;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;

/// One labelled training sample: the assembled input tensor for a graph and
/// its class index.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Input tensor (`sequence length × channels`).
    pub input: Matrix,
    /// Class index in `0..n_classes`.
    pub label: usize,
}

/// Training hyper-parameters.
///
/// Defaults follow the paper (§5.1): RMSProp, initial LR 0.01, LR halved
/// after 5 epochs without loss improvement, batch size 32.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (the paper selects from {32, 256}).
    pub batch_size: usize,
    /// Initial learning rate.
    pub learning_rate: f32,
    /// Shuffle seed (and any other trainer randomness).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 50,
            batch_size: 32,
            learning_rate: 0.01,
            seed: 0,
        }
    }
}

/// A training run aborted because the optimisation diverged (or the inputs
/// were unusable). Returned by [`try_fit`].
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// A sample's loss came back NaN or ±∞.
    NonFiniteLoss {
        /// Epoch in which the loss diverged (0-based).
        epoch: usize,
        /// Mini-batch index within the epoch.
        batch: usize,
    },
    /// The batch gradient norm exceeded [`GuardConfig::max_grad_norm`]
    /// (or was itself non-finite).
    ExplodingGradient {
        /// Epoch in which the gradient exploded (0-based).
        epoch: usize,
        /// Mini-batch index within the epoch.
        batch: usize,
        /// The offending L2 gradient norm.
        norm: f32,
    },
    /// A parameter became NaN or ±∞ (detected by the end-of-epoch sweep).
    NonFiniteParameters {
        /// Epoch after which the corruption was detected (0-based).
        epoch: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::EmptyTrainingSet => write!(f, "training set must be non-empty"),
            TrainError::NonFiniteLoss { epoch, batch } => {
                write!(f, "non-finite loss at epoch {epoch}, batch {batch}")
            }
            TrainError::ExplodingGradient { epoch, batch, norm } => {
                write!(
                    f,
                    "exploding gradient (norm {norm:e}) at epoch {epoch}, batch {batch}"
                )
            }
            TrainError::NonFiniteParameters { epoch } => {
                write!(f, "non-finite parameters after epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// Divergence-guard configuration for [`try_fit`].
#[derive(Debug, Clone, Copy)]
pub struct GuardConfig {
    /// Abort when the averaged batch gradient L2 norm exceeds this value.
    /// Set to `f32::INFINITY` to disable the check.
    pub max_grad_norm: f32,
    /// Sweep all parameters for NaN/∞ after every epoch.
    pub check_params: bool,
    /// Fault injection for tests: report a [`TrainError::NonFiniteLoss`] at
    /// the start of the given epoch, as if the loss had diverged. `None`
    /// (the default) injects nothing; production code never sets this.
    pub inject_nan_at_epoch: Option<usize>,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            max_grad_norm: 1e6,
            check_params: true,
            inject_nan_at_epoch: None,
        }
    }
}

/// Per-epoch statistics emitted by [`fit`].
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Epoch index, 0-based.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub loss: f32,
    /// Training-set accuracy measured in eval mode after the epoch
    /// (the quantity plotted in the paper's Figures 6–7).
    pub train_accuracy: f64,
    /// Held-out accuracy after the epoch, when an eval set was supplied.
    pub eval_accuracy: Option<f64>,
    /// Wall-clock seconds spent in the epoch's optimisation loop
    /// (the quantity in the paper's Table 5).
    pub epoch_seconds: f64,
    /// Learning rate in effect at the end of the epoch.
    pub learning_rate: f32,
}

/// Classification accuracy of `model` on `samples` in eval mode.
///
/// Takes `&Sequential`: inference goes through the pure
/// [`Sequential::infer`] path, so the model is shared immutably across the
/// pool's worker threads (one prediction per fan-out task; the count of
/// correct predictions is order-independent).
///
/// Returns `None` for an empty slice — an empty test fold must surface as
/// "no measurement", never as 0% accuracy in a result table.
pub fn evaluate(model: &Sequential, samples: &[Sample]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let correct: usize = deepmap_par::par_map_indexed(samples, |_, s| {
        usize::from(model.predict(&s.input) == s.label)
    })
    .into_iter()
    .sum();
    Some(correct as f64 / samples.len() as f64)
}

/// L2 norm of all accumulated gradients.
fn grad_norm(model: &mut Sequential) -> f32 {
    let mut sq = 0.0f64;
    for p in model.params() {
        for &g in p.grad.iter() {
            sq += f64::from(g) * f64::from(g);
        }
    }
    sq.sqrt() as f32
}

/// `true` when any trainable scalar is NaN or ±∞.
fn params_non_finite(model: &mut Sequential) -> bool {
    model
        .params()
        .iter()
        .any(|p| p.value.iter().any(|v| !v.is_finite()))
}

/// Trains `model` on `train` for `config.epochs` epochs, optionally
/// evaluating on `eval` after every epoch. Returns per-epoch statistics.
///
/// The loop is the standard mini-batch recipe: shuffle, accumulate exact
/// gradients per batch, average, RMSProp step, plateau LR decay on the mean
/// epoch loss.
///
/// # Panics
/// Panics on an empty training set or when training diverges under the
/// default [`GuardConfig`]; use [`try_fit`] for a fallible version.
pub fn fit(
    model: &mut Sequential,
    train: &[Sample],
    eval: Option<&[Sample]>,
    config: &TrainConfig,
) -> Vec<EpochStats> {
    assert!(!train.is_empty(), "training set must be non-empty");
    try_fit(model, train, eval, config, &GuardConfig::default())
        .unwrap_or_else(|e| panic!("training diverged: {e}"))
}

/// Fallible training loop with divergence guards.
///
/// Watches every mini-batch for non-finite losses and exploding gradients
/// and (optionally) sweeps the parameters for NaN/∞ after each epoch;
/// aborts the run with a [`TrainError`] the moment anything trips. The
/// model is left in whatever state the abort found it in — callers that
/// retry must rebuild it from a fresh initialisation.
pub fn try_fit(
    model: &mut Sequential,
    train: &[Sample],
    eval: Option<&[Sample]>,
    config: &TrainConfig,
    guard: &GuardConfig,
) -> Result<Vec<EpochStats>, TrainError> {
    if train.is_empty() {
        return Err(TrainError::EmptyTrainingSet);
    }
    let _fit_span = deepmap_obs::span("train.fit")
        .with_u64("epochs", config.epochs as u64)
        .with_u64("samples", train.len() as u64);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut optimizer = RmsProp::new(config.learning_rate);
    let mut scheduler = PlateauScheduler::paper_default();
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut history = Vec::with_capacity(config.epochs);
    // One model replica per pool worker. Workers check a replica out of the
    // pool per sample, so a replica only ever serves one sample at a time;
    // parameters are resynchronised from the master after every optimiser
    // step. If the pool grows mid-fit (a concurrent `set_threads`), checkout
    // falls back to cloning the master, so the pool can never underflow.
    let n_threads = deepmap_par::threads();
    let mut replicas: Vec<Sequential> = (0..n_threads).map(|_| model.clone()).collect();
    let n_params = model.n_parameters();
    let batch_len = config.batch_size.max(1);

    for epoch in 0..config.epochs {
        let mut epoch_span = deepmap_obs::span("train.epoch");
        epoch_span.record_u64("epoch", epoch as u64);
        if guard.inject_nan_at_epoch == Some(epoch) {
            return Err(guard_trip(TrainError::NonFiniteLoss { epoch, batch: 0 }));
        }
        let watch = Stopwatch::start();
        order.shuffle(&mut rng);
        let mut total_loss = 0.0f64;
        let mut last_grad_norm = None;
        for (batch_idx, batch) in order.chunks(batch_len).enumerate() {
            // Refresh the replicas with the post-step master weights, then
            // fan the batch out: each task checks a replica out, zeroes its
            // gradients, pins the dropout stream to the sample's position in
            // the epoch, and returns (loss, flat per-sample gradients).
            for replica in replicas.iter_mut() {
                replica.copy_params_from(model);
            }
            let pool = std::sync::Mutex::new(std::mem::take(&mut replicas));
            let nonce_base = (epoch * train.len() + batch_idx * batch_len) as u64;
            let master: &Sequential = model;
            let results: Vec<(f32, Vec<f32>)> = deepmap_par::par_map_index(batch.len(), |j| {
                let mut replica = {
                    let popped = pool.lock().unwrap().pop();
                    popped.unwrap_or_else(|| master.clone())
                };
                replica.zero_grad();
                replica.set_noise_nonce(nonce_base + j as u64);
                let sample = &train[batch[j]];
                let (loss, _) = replica.train_step(&sample.input, sample.label);
                let mut flat = Vec::with_capacity(n_params);
                replica.grads_flat_into(&mut flat);
                pool.lock().unwrap().push(replica);
                (loss, flat)
            });
            replicas = pool.into_inner().unwrap();
            // Fixed-order reduction: adding the per-sample contributions in
            // sample order performs the same f32 additions, in the same
            // order, as the sequential in-place accumulation — losses,
            // gradients, and weights stay bit-identical at any thread count.
            model.zero_grad();
            for (loss, flat) in &results {
                if !loss.is_finite() {
                    return Err(guard_trip(TrainError::NonFiniteLoss {
                        epoch,
                        batch: batch_idx,
                    }));
                }
                total_loss += f64::from(*loss);
                model.add_grads_flat(flat);
            }
            model.scale_grads(1.0 / batch.len() as f32);
            if guard.max_grad_norm.is_finite() {
                let norm = grad_norm(model);
                if !norm.is_finite() || norm > guard.max_grad_norm {
                    return Err(guard_trip(TrainError::ExplodingGradient {
                        epoch,
                        batch: batch_idx,
                        norm,
                    }));
                }
                last_grad_norm = Some(norm);
            }
            optimizer.step(&mut model.params());
        }
        if guard.check_params && params_non_finite(model) {
            return Err(guard_trip(TrainError::NonFiniteParameters { epoch }));
        }
        let epoch_seconds = watch.elapsed_seconds();
        let mean_loss = (total_loss / train.len() as f64) as f32;
        scheduler.observe(mean_loss, &mut optimizer);
        let train_accuracy = evaluate(model, train).expect("train set is non-empty");
        let eval_accuracy = eval.and_then(|e| evaluate(model, e));
        deepmap_obs::counter("train.epochs_run").inc();
        deepmap_obs::histogram("train.epoch_seconds").observe(epoch_seconds);
        epoch_span.record_f64("loss", f64::from(mean_loss));
        epoch_span.record_f64("learning_rate", f64::from(optimizer.learning_rate()));
        if let Some(norm) = last_grad_norm {
            epoch_span.record_f64("grad_norm", f64::from(norm));
        }
        epoch_span.record_f64("train_accuracy", train_accuracy);
        if let Some(acc) = eval_accuracy {
            epoch_span.record_f64("eval_accuracy", acc);
        }
        history.push(EpochStats {
            epoch,
            loss: mean_loss,
            train_accuracy,
            eval_accuracy,
            epoch_seconds,
            learning_rate: optimizer.learning_rate(),
        });
    }
    Ok(history)
}

/// Counts a divergence-guard abort before handing the error back.
fn guard_trip(err: TrainError) -> TrainError {
    deepmap_obs::counter("train.guard_trips").inc();
    err
}

/// Per-sample logits in eval mode, for callers that need scores rather than
/// hard predictions. Pure (`&Sequential`), fanned out over the shared pool;
/// results come back in sample order.
pub fn predict_logits(model: &Sequential, samples: &[Sample]) -> Vec<Matrix> {
    deepmap_par::par_map_indexed(samples, |_, s| model.infer(&s.input))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Dropout, ReLU, SumPool};
    use rand::Rng;

    /// Two linearly separable "graph" classes: rows biased positive vs
    /// negative in different channels.
    fn toy_dataset(n_per_class: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::new();
        for class in 0..2usize {
            for _ in 0..n_per_class {
                let rows = rng.gen_range(3..7);
                let mut data = Vec::with_capacity(rows * 4);
                for _ in 0..rows {
                    for c in 0..4 {
                        let base = if (c < 2) == (class == 0) { 1.0 } else { -0.2 };
                        data.push(base + rng.gen_range(-0.3..0.3));
                    }
                }
                samples.push(Sample {
                    input: Matrix::from_vec(
                        rows,
                        4,
                        data.iter().map(|&v: &f64| v as f32).collect(),
                    ),
                    label: class,
                });
            }
        }
        samples
    }

    fn toy_model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .push(Box::new(Dense::new(4, 8, &mut rng)))
            .push(Box::new(ReLU::new()))
            .push(Box::new(SumPool::new()))
            .push(Box::new(Dense::new(8, 2, &mut rng)))
    }

    #[test]
    fn fit_learns_separable_data() {
        let data = toy_dataset(30, 1);
        let mut model = toy_model(2);
        let history = fit(
            &mut model,
            &data,
            None,
            &TrainConfig {
                epochs: 20,
                batch_size: 8,
                learning_rate: 0.01,
                seed: 3,
            },
        );
        let last = history.last().unwrap();
        assert!(
            last.train_accuracy > 0.95,
            "final train accuracy {}",
            last.train_accuracy
        );
        assert!(last.loss < history[0].loss);
        assert_eq!(history.len(), 20);
    }

    #[test]
    fn eval_set_tracked() {
        let data = toy_dataset(20, 4);
        let (train, test) = data.split_at(30);
        let mut model = toy_model(5);
        let history = fit(
            &mut model,
            train,
            Some(test),
            &TrainConfig {
                epochs: 15,
                batch_size: 8,
                learning_rate: 0.01,
                seed: 6,
            },
        );
        let final_eval = history.last().unwrap().eval_accuracy.unwrap();
        assert!(final_eval > 0.8, "eval accuracy {final_eval}");
    }

    #[test]
    fn deterministic_given_seeds() {
        let data = toy_dataset(10, 7);
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 4,
            learning_rate: 0.01,
            seed: 8,
        };
        let mut m1 = toy_model(9);
        let mut m2 = toy_model(9);
        let h1 = fit(&mut m1, &data, None, &cfg);
        let h2 = fit(&mut m2, &data, None, &cfg);
        for (a, b) in h1.iter().zip(&h2) {
            assert_eq!(a.loss, b.loss);
            assert_eq!(a.train_accuracy, b.train_accuracy);
        }
    }

    fn dropout_model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .push(Box::new(Dense::new(4, 8, &mut rng)))
            .push(Box::new(ReLU::new()))
            .push(Box::new(Dropout::new(0.3, seed ^ 0xD0)))
            .push(Box::new(SumPool::new()))
            .push(Box::new(Dense::new(8, 2, &mut rng)))
    }

    #[test]
    fn training_is_bit_identical_across_thread_counts() {
        // The tentpole guarantee: same losses and same final weights whether
        // the batch fan-out runs on 1 worker or 4 — including the dropout
        // masks, which are pinned to sample position, not worker identity.
        let data = toy_dataset(12, 30);
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 5,
            learning_rate: 0.01,
            seed: 31,
        };
        let run = |threads: usize| {
            deepmap_par::set_threads(threads);
            let mut model = dropout_model(32);
            let history = fit(&mut model, &data, None, &cfg);
            let weights: Vec<Vec<f32>> = model.param_values().iter().map(|v| v.to_vec()).collect();
            (history, weights)
        };
        let (h1, w1) = run(1);
        let (h4, w4) = run(4);
        assert_eq!(h1.len(), h4.len());
        for (a, b) in h1.iter().zip(&h4) {
            assert_eq!(a.loss, b.loss, "epoch {} loss", a.epoch);
            assert_eq!(a.train_accuracy, b.train_accuracy);
        }
        assert_eq!(w1, w4, "final weights must be bit-identical");
    }

    #[test]
    fn evaluate_shares_model_immutably() {
        let data = toy_dataset(5, 40);
        let model = dropout_model(41);
        deepmap_par::set_threads(4);
        let a = evaluate(&model, &data).unwrap();
        deepmap_par::set_threads(1);
        let b = evaluate(&model, &data).unwrap();
        assert_eq!(a, b);
        assert_eq!(predict_logits(&model, &data).len(), data.len());
    }

    #[test]
    fn evaluate_empty_is_none() {
        let model = toy_model(1);
        assert_eq!(evaluate(&model, &[]), None);
    }

    #[test]
    fn evaluate_non_empty_is_some() {
        let data = toy_dataset(3, 2);
        let model = toy_model(1);
        let acc = evaluate(&model, &data).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    #[should_panic(expected = "training set must be non-empty")]
    fn fit_empty_panics() {
        let mut model = toy_model(1);
        fit(&mut model, &[], None, &TrainConfig::default());
    }

    #[test]
    fn try_fit_empty_is_error() {
        let mut model = toy_model(1);
        let err = try_fit(
            &mut model,
            &[],
            None,
            &TrainConfig::default(),
            &GuardConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, TrainError::EmptyTrainingSet);
    }

    #[test]
    fn try_fit_matches_fit_on_clean_data() {
        let data = toy_dataset(10, 11);
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 4,
            learning_rate: 0.01,
            seed: 12,
        };
        let mut m1 = toy_model(13);
        let mut m2 = toy_model(13);
        let h1 = fit(&mut m1, &data, None, &cfg);
        let h2 = try_fit(&mut m2, &data, None, &cfg, &GuardConfig::default()).unwrap();
        assert_eq!(h1.len(), h2.len());
        for (a, b) in h1.iter().zip(&h2) {
            assert_eq!(a.loss, b.loss);
            assert_eq!(a.train_accuracy, b.train_accuracy);
        }
    }

    #[test]
    fn nan_input_detected_as_divergence() {
        // A NaN sample poisons the gradients; the guard must abort instead
        // of silently continuing with corrupted parameters.
        let mut data = toy_dataset(6, 14);
        data[0].input = Matrix::from_vec(3, 4, vec![f32::NAN; 12]);
        let mut model = toy_model(15);
        let err = try_fit(
            &mut model,
            &data,
            None,
            &TrainConfig {
                epochs: 3,
                batch_size: 4,
                learning_rate: 0.01,
                seed: 16,
            },
            &GuardConfig::default(),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                TrainError::NonFiniteLoss { .. }
                    | TrainError::ExplodingGradient { .. }
                    | TrainError::NonFiniteParameters { .. }
            ),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn injected_fault_aborts_at_requested_epoch() {
        let data = toy_dataset(6, 17);
        let mut model = toy_model(18);
        let err = try_fit(
            &mut model,
            &data,
            None,
            &TrainConfig {
                epochs: 5,
                batch_size: 4,
                learning_rate: 0.01,
                seed: 19,
            },
            &GuardConfig {
                inject_nan_at_epoch: Some(2),
                ..GuardConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, TrainError::NonFiniteLoss { epoch: 2, batch: 0 });
    }

    #[test]
    fn tight_grad_norm_trips_exploding_gradient() {
        let data = toy_dataset(6, 20);
        let mut model = toy_model(21);
        let err = try_fit(
            &mut model,
            &data,
            None,
            &TrainConfig {
                epochs: 2,
                batch_size: 4,
                learning_rate: 0.01,
                seed: 22,
            },
            &GuardConfig {
                max_grad_norm: 1e-12,
                ..GuardConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, TrainError::ExplodingGradient { .. }), "{err}");
    }
}
