//! Mini-batch training loop.

use crate::layers::Mode;
use crate::matrix::Matrix;
use crate::model::Sequential;
use crate::optim::{PlateauScheduler, RmsProp};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// One labelled training sample: the assembled input tensor for a graph and
/// its class index.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Input tensor (`sequence length × channels`).
    pub input: Matrix,
    /// Class index in `0..n_classes`.
    pub label: usize,
}

/// Training hyper-parameters.
///
/// Defaults follow the paper (§5.1): RMSProp, initial LR 0.01, LR halved
/// after 5 epochs without loss improvement, batch size 32.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (the paper selects from {32, 256}).
    pub batch_size: usize,
    /// Initial learning rate.
    pub learning_rate: f32,
    /// Shuffle seed (and any other trainer randomness).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 50,
            batch_size: 32,
            learning_rate: 0.01,
            seed: 0,
        }
    }
}

/// Per-epoch statistics emitted by [`fit`].
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Epoch index, 0-based.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub loss: f32,
    /// Training-set accuracy measured in eval mode after the epoch
    /// (the quantity plotted in the paper's Figures 6–7).
    pub train_accuracy: f64,
    /// Held-out accuracy after the epoch, when an eval set was supplied.
    pub eval_accuracy: Option<f64>,
    /// Wall-clock seconds spent in the epoch's optimisation loop
    /// (the quantity in the paper's Table 5).
    pub epoch_seconds: f64,
    /// Learning rate in effect at the end of the epoch.
    pub learning_rate: f32,
}

/// Classification accuracy of `model` on `samples` in eval mode.
pub fn evaluate(model: &mut Sequential, samples: &[Sample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct = samples
        .iter()
        .filter(|s| model.predict(&s.input) == s.label)
        .count();
    correct as f64 / samples.len() as f64
}

/// Trains `model` on `train` for `config.epochs` epochs, optionally
/// evaluating on `eval` after every epoch. Returns per-epoch statistics.
///
/// The loop is the standard mini-batch recipe: shuffle, accumulate exact
/// gradients per batch, average, RMSProp step, plateau LR decay on the mean
/// epoch loss.
pub fn fit(
    model: &mut Sequential,
    train: &[Sample],
    eval: Option<&[Sample]>,
    config: &TrainConfig,
) -> Vec<EpochStats> {
    assert!(!train.is_empty(), "training set must be non-empty");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut optimizer = RmsProp::new(config.learning_rate);
    let mut scheduler = PlateauScheduler::paper_default();
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut history = Vec::with_capacity(config.epochs);

    for epoch in 0..config.epochs {
        let start = Instant::now();
        order.shuffle(&mut rng);
        let mut total_loss = 0.0f64;
        for batch in order.chunks(config.batch_size.max(1)) {
            model.zero_grad();
            for &i in batch {
                let sample = &train[i];
                let (loss, _) = model.train_step(&sample.input, sample.label);
                total_loss += loss as f64;
            }
            model.scale_grads(1.0 / batch.len() as f32);
            optimizer.step(&mut model.params());
        }
        let epoch_seconds = start.elapsed().as_secs_f64();
        let mean_loss = (total_loss / train.len() as f64) as f32;
        scheduler.observe(mean_loss, &mut optimizer);
        let train_accuracy = evaluate(model, train);
        let eval_accuracy = eval.map(|e| evaluate(model, e));
        history.push(EpochStats {
            epoch,
            loss: mean_loss,
            train_accuracy,
            eval_accuracy,
            epoch_seconds,
            learning_rate: optimizer.learning_rate(),
        });
    }
    history
}

/// Per-sample logits in eval mode, for callers that need scores rather than
/// hard predictions.
pub fn predict_logits(model: &mut Sequential, samples: &[Sample]) -> Vec<Matrix> {
    samples
        .iter()
        .map(|s| model.forward(&s.input, Mode::Eval))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, ReLU, SumPool};
    use rand::Rng;

    /// Two linearly separable "graph" classes: rows biased positive vs
    /// negative in different channels.
    fn toy_dataset(n_per_class: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::new();
        for class in 0..2usize {
            for _ in 0..n_per_class {
                let rows = rng.gen_range(3..7);
                let mut data = Vec::with_capacity(rows * 4);
                for _ in 0..rows {
                    for c in 0..4 {
                        let base = if (c < 2) == (class == 0) { 1.0 } else { -0.2 };
                        data.push(base + rng.gen_range(-0.3..0.3));
                    }
                }
                samples.push(Sample {
                    input: Matrix::from_vec(rows, 4, data.iter().map(|&v: &f64| v as f32).collect()),
                    label: class,
                });
            }
        }
        samples
    }

    fn toy_model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .push(Box::new(Dense::new(4, 8, &mut rng)))
            .push(Box::new(ReLU::new()))
            .push(Box::new(SumPool::new()))
            .push(Box::new(Dense::new(8, 2, &mut rng)))
    }

    #[test]
    fn fit_learns_separable_data() {
        let data = toy_dataset(30, 1);
        let mut model = toy_model(2);
        let history = fit(
            &mut model,
            &data,
            None,
            &TrainConfig {
                epochs: 20,
                batch_size: 8,
                learning_rate: 0.01,
                seed: 3,
            },
        );
        let last = history.last().unwrap();
        assert!(
            last.train_accuracy > 0.95,
            "final train accuracy {}",
            last.train_accuracy
        );
        assert!(last.loss < history[0].loss);
        assert_eq!(history.len(), 20);
    }

    #[test]
    fn eval_set_tracked() {
        let data = toy_dataset(20, 4);
        let (train, test) = data.split_at(30);
        let mut model = toy_model(5);
        let history = fit(
            &mut model,
            train,
            Some(test),
            &TrainConfig {
                epochs: 15,
                batch_size: 8,
                learning_rate: 0.01,
                seed: 6,
            },
        );
        let final_eval = history.last().unwrap().eval_accuracy.unwrap();
        assert!(final_eval > 0.8, "eval accuracy {final_eval}");
    }

    #[test]
    fn deterministic_given_seeds() {
        let data = toy_dataset(10, 7);
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 4,
            learning_rate: 0.01,
            seed: 8,
        };
        let mut m1 = toy_model(9);
        let mut m2 = toy_model(9);
        let h1 = fit(&mut m1, &data, None, &cfg);
        let h2 = fit(&mut m2, &data, None, &cfg);
        for (a, b) in h1.iter().zip(&h2) {
            assert_eq!(a.loss, b.loss);
            assert_eq!(a.train_accuracy, b.train_accuracy);
        }
    }

    #[test]
    fn evaluate_empty_is_zero() {
        let mut model = toy_model(1);
        assert_eq!(evaluate(&mut model, &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "training set must be non-empty")]
    fn fit_empty_panics() {
        let mut model = toy_model(1);
        fit(&mut model, &[], None, &TrainConfig::default());
    }
}
