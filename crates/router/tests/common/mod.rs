//! Shared helpers for the deepmap-router integration suites: small trained
//! bundles (cycles vs cliques), seed-parameterised so tests can hold two
//! genuinely different models resident at once, and deterministic request
//! graphs.

#![allow(dead_code)] // each test binary uses a subset of these helpers

use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_graph::generators::{complete_graph, cycle_graph};
use deepmap_graph::Graph;
use deepmap_kernels::FeatureKind;
use deepmap_nn::train::TrainConfig;
use deepmap_serve::ModelBundle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A small cycles-vs-cliques bundle. Different seeds give different graph
/// samples and init, hence different (but equally valid) weights — two
/// seeds make two distinguishable resident models.
pub fn trained_bundle(seed: u64) -> Arc<ModelBundle> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..8 {
        graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
        labels.push(0);
        graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
        labels.push(1);
    }
    let dm = DeepMap::new(DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: 10,
            batch_size: 8,
            learning_rate: 0.01,
            seed: seed.wrapping_add(1),
        },
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
    });
    let (prepared, pre) = dm.try_prepare_frozen(&graphs, &labels).unwrap();
    let all: Vec<usize> = (0..graphs.len()).collect();
    let result = dm.fit_split(&prepared, &all, &all);
    let bundle = ModelBundle::freeze(
        &dm,
        &prepared,
        pre,
        &result.model,
        vec!["cycle".to_string(), "clique".to_string()],
    )
    .unwrap();
    Arc::new(bundle)
}

/// [`trained_bundle`], then lowered to int8 with the agreement gate run
/// over the training graphs themselves — a DMB2 bundle servable at either
/// precision.
pub fn quantized_bundle(seed: u64) -> Arc<ModelBundle> {
    let bundle = trained_bundle(seed);
    let mut bundle = (*bundle).clone();
    let probes = request_graphs(8);
    let probe_refs: Vec<&Graph> = probes.iter().collect();
    bundle
        .quantize(&probe_refs, 0.5)
        .expect("toy model survives int8");
    Arc::new(bundle)
}

pub fn request_graphs(n: usize) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(77);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                cycle_graph(5 + i % 4, 0, &mut rng)
            } else {
                complete_graph(4 + i % 4, 0, &mut rng)
            }
        })
        .collect()
}
