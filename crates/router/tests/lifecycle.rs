//! Registry lifecycle: register/resolve/reload/unregister semantics,
//! default-model routing, hot swap under concurrent load with zero failed
//! requests, and the shutdown audit (every retired pool joined, every
//! thread accounted for).

mod common;

use common::{quantized_bundle, request_graphs, trained_bundle};
use deepmap_router::{ModelConfig, ModelRouter, RouterConfig, RouterError, MAX_MODEL_NAME};
use deepmap_serve::{Health, Precision, ServeError, ServerConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn register_resolve_and_default_semantics() {
    let router = ModelRouter::new(RouterConfig::default());
    let alpha = trained_bundle(11);
    let beta = trained_bundle(1234);

    router
        .register("alpha", Arc::clone(&alpha), ModelConfig::default())
        .unwrap();
    router
        .register("beta", Arc::clone(&beta), ModelConfig::default())
        .unwrap();

    // First registration became the default; the empty name routes to it.
    assert_eq!(router.default_model().as_deref(), Some("alpha"));
    let graphs = request_graphs(4);
    let mut direct_alpha = alpha.predictor().unwrap();
    let mut direct_beta = beta.predictor().unwrap();
    for graph in &graphs {
        let via_default = router.predict("", graph.clone()).unwrap();
        let via_name = router.predict("alpha", graph.clone()).unwrap();
        let want = direct_alpha.predict(graph);
        assert_eq!(via_default.class, want.class);
        assert_eq!(via_default.scores, want.scores);
        assert_eq!(via_name.scores, want.scores);
        let via_beta = router.predict("beta", graph.clone()).unwrap();
        assert_eq!(via_beta.scores, direct_beta.predict(graph).scores);
    }

    // The listing is sorted, versioned, and flags the default.
    let models = router.list_models();
    assert_eq!(models.len(), 2);
    assert_eq!(models[0].name, "alpha");
    assert!(models[0].is_default);
    assert_eq!(models[0].version, 1);
    assert_eq!(models[0].health, Health::Ready);
    assert_eq!(models[1].name, "beta");
    assert!(!models[1].is_default);
    assert_eq!(models[1].n_classes, 2);

    // Occupied names refuse a second register (reload is the swap path).
    match router.register("alpha", Arc::clone(&beta), ModelConfig::default()) {
        Err(RouterError::AlreadyRegistered(name)) => assert_eq!(name, "alpha"),
        other => panic!("expected AlreadyRegistered, got {other:?}"),
    }

    // Routing misses are typed.
    match router.predict("gamma", graphs[0].clone()) {
        Err(RouterError::UnknownModel(name)) => assert_eq!(name, "gamma"),
        other => panic!("expected UnknownModel, got {other:?}"),
    }

    // Unregistering the default leaves the empty name unroutable until a
    // new default is named.
    router.unregister("alpha").unwrap();
    assert_eq!(router.default_model(), None);
    match router.predict("", graphs[0].clone()) {
        Err(RouterError::NoDefaultModel) => {}
        other => panic!("expected NoDefaultModel, got {other:?}"),
    }
    router.set_default("beta").unwrap();
    assert!(router.predict("", graphs[0].clone()).is_ok());

    let stats = router.shutdown();
    assert_eq!(stats.registrations, 2);
    assert_eq!(
        stats.pools_retired, 2,
        "alpha unregistered + beta shut down"
    );
    assert_eq!(stats.pools_joined, stats.pools_retired);
    assert_eq!(stats.pools_leaked, 0);
    assert!(stats.threads_joined > 0);
}

#[test]
fn invalid_names_are_refused() {
    let router = ModelRouter::new(RouterConfig::default());
    let bundle = trained_bundle(11);
    for name in ["", &"x".repeat(MAX_MODEL_NAME + 1), "bad\nname", "q\"uote"] {
        match router.register(name, Arc::clone(&bundle), ModelConfig::default()) {
            Err(RouterError::InvalidName(_)) => {}
            other => panic!("name {name:?}: expected InvalidName, got {other:?}"),
        }
    }
    assert!(router.list_models().is_empty());
}

#[test]
fn failed_probe_keeps_the_candidate_out() {
    let router = ModelRouter::new(RouterConfig::default());
    let bundle = trained_bundle(11);
    // A zero probe budget cannot be met (warm-up alone takes longer), so
    // the candidate pool fails its gate and is torn down.
    let config = ModelConfig {
        probe_timeout: Duration::ZERO,
        ..ModelConfig::default()
    };
    match router.register("alpha", Arc::clone(&bundle), config) {
        Err(RouterError::ProbeFailed { model, .. }) => assert_eq!(model, "alpha"),
        other => panic!("expected ProbeFailed, got {other:?}"),
    }
    assert!(router.list_models().is_empty());
    assert_eq!(router.default_model(), None);

    // The router is unharmed: a sane registration still lands.
    router
        .register("alpha", bundle, ModelConfig::default())
        .unwrap();
    assert_eq!(router.list_models().len(), 1);
    let stats = router.shutdown();
    assert_eq!(stats.pools_leaked, 0);
}

#[test]
fn hot_reload_under_load_loses_no_requests() {
    let router = Arc::new(ModelRouter::new(RouterConfig::default()));
    let v1 = trained_bundle(11);
    let v2 = trained_bundle(1234);
    router
        .register("live", Arc::clone(&v1), ModelConfig::default())
        .unwrap();

    // Four clients hammer the model while it is swapped underneath them.
    // Every request must be answered — a prediction or a typed admission
    // rejection both count; a transport-style failure (shutdown, panic,
    // unknown model) does not.
    let stop = Arc::new(AtomicBool::new(false));
    let answered = Arc::new(AtomicU64::new(0));
    let graphs = request_graphs(8);
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            let answered = Arc::clone(&answered);
            let graphs = graphs.clone();
            std::thread::spawn(move || {
                let mut i = c;
                while !stop.load(Ordering::Relaxed) {
                    let graph = graphs[i % graphs.len()].clone();
                    i += 1;
                    match router.predict("live", graph) {
                        Ok(_) => {
                            answered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(RouterError::Serve(
                            ServeError::QueueFull | ServeError::Rejected { .. },
                        )) => {
                            answered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("request lost across a hot swap: {e}"),
                    }
                }
            })
        })
        .collect();

    // Let traffic establish, then swap back and forth mid-load.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(router.reload("live", Arc::clone(&v2)).unwrap(), 2);
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(router.reload("live", Arc::clone(&v1)).unwrap(), 3);
    std::thread::sleep(Duration::from_millis(50));

    stop.store(true, Ordering::Relaxed);
    for client in clients {
        client.join().expect("no client may lose a request");
    }
    assert!(answered.load(Ordering::Relaxed) > 0, "traffic actually ran");

    // The listing reflects the surviving pool and its bumped version.
    let models = router.list_models();
    assert_eq!(models[0].version, 3);
    assert_eq!(models[0].health, Health::Ready);

    // The audit balances: both retired pools were joined, nothing leaked.
    let stats = router.shutdown();
    assert_eq!(stats.reloads, 2);
    assert_eq!(stats.pools_retired, 3, "two reloads + final shutdown");
    assert_eq!(stats.pools_joined, 3);
    assert_eq!(stats.pools_leaked, 0);
    assert!(
        stats.threads_joined >= 9,
        "batcher + workers per pool across three pools, got {}",
        stats.threads_joined
    );
}

#[test]
fn reload_of_unknown_model_is_refused_and_shutdown_is_idempotent() {
    let router = ModelRouter::new(RouterConfig::default());
    let bundle = trained_bundle(11);
    match router.reload("ghost", Arc::clone(&bundle)) {
        Err(RouterError::UnknownModel(name)) => assert_eq!(name, "ghost"),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
    router
        .register("alpha", Arc::clone(&bundle), ModelConfig::default())
        .unwrap();

    let first = router.shutdown();
    assert_eq!(first.pools_leaked, 0);
    // Post-shutdown lifecycle calls are typed refusals, and a second
    // shutdown reports identical books.
    match router.register("beta", Arc::clone(&bundle), ModelConfig::default()) {
        Err(RouterError::ShutDown) => {}
        other => panic!("expected ShutDown, got {other:?}"),
    }
    match router.resolve("alpha") {
        Err(RouterError::ShutDown) => {}
        Err(other) => panic!("expected ShutDown, got {other}"),
        Ok(_) => panic!("resolved a model on a shut-down router"),
    }
    assert_eq!(router.shutdown(), first);
}

#[test]
fn per_model_precision_is_part_of_the_serving_policy() {
    // Two residents over the *same* DMB2 bundle, one per precision: the
    // per-model ServerConfig carries the numeric mode, so a router can run
    // an int8 pool next to its f32 reference.
    let router = ModelRouter::new(RouterConfig::default());
    let bundle = quantized_bundle(11);
    let int8_config = ModelConfig {
        server: ServerConfig {
            precision: Precision::Int8,
            ..ServerConfig::default()
        },
        ..ModelConfig::default()
    };
    router
        .register("ref-f32", Arc::clone(&bundle), ModelConfig::default())
        .unwrap();
    router
        .register("live-int8", Arc::clone(&bundle), int8_config.clone())
        .unwrap();

    let mut direct_f32 = bundle.predictor().unwrap();
    let mut direct_int8 = bundle.predictor_with(Precision::Int8).unwrap();
    for graph in &request_graphs(6) {
        let f32_served = router.predict("ref-f32", graph.clone()).unwrap();
        assert_eq!(f32_served.scores, direct_f32.predict(graph).scores);
        let int8_served = router.predict("live-int8", graph.clone()).unwrap();
        assert_eq!(int8_served.scores, direct_int8.predict(graph).scores);
    }

    // Each pool's latency series carries its own precision label.
    let text = router.render_metrics();
    assert!(
        text.contains(
            "deepmap_serve_latency_seconds_count{model=\"ref-f32\",stage=\"infer_end\",precision=\"f32\"}"
        ),
        "{text}"
    );
    assert!(
        text.contains(
            "deepmap_serve_latency_seconds_count{model=\"live-int8\",stage=\"infer_end\",precision=\"int8\"}"
        ),
        "{text}"
    );

    // A hot swap rebuilds the pool at the registered precision — reload the
    // int8 model and check it still serves int8 answers.
    assert_eq!(router.reload("live-int8", Arc::clone(&bundle)).unwrap(), 2);
    let graph = &request_graphs(1)[0];
    let reloaded = router.predict("live-int8", graph.clone()).unwrap();
    assert_eq!(reloaded.scores, direct_int8.predict(graph).scores);

    // An int8 policy over a bundle without quantized weights is a typed
    // registration failure, not a broken resident.
    let plain = trained_bundle(1234);
    match router.register("bad-int8", plain, int8_config) {
        Err(RouterError::Serve(ServeError::NoQuantizedWeights)) => {}
        other => panic!("expected NoQuantizedWeights, got {other:?}"),
    }
    assert_eq!(router.list_models().len(), 2);
    let stats = router.shutdown();
    assert_eq!(stats.pools_leaked, 0);
}

#[test]
fn repeated_hot_swaps_sweep_retired_pools_without_manual_sweeping() {
    let router = ModelRouter::new(RouterConfig::default());
    let v1 = trained_bundle(11);
    let v2 = trained_bundle(1234);
    router
        .register("live", Arc::clone(&v1), ModelConfig::default())
        .unwrap();

    // An in-flight user holds the pool's Arc across a swap: the retired
    // pool cannot be joined at the swap itself, so it sits in the backlog.
    let held = router.resolve("live").unwrap();
    router.reload("live", Arc::clone(&v2)).unwrap();
    assert_eq!(
        router.retired_backlog(),
        1,
        "a pool with an in-flight user must wait for its holder"
    );
    drop(held);

    // Repeated hot swaps with no manual sweep: every reload sweeps
    // opportunistically, so the backlog (including the pool the holder
    // just released) never accumulates.
    for i in 0..4 {
        let bundle = if i % 2 == 0 {
            Arc::clone(&v1)
        } else {
            Arc::clone(&v2)
        };
        router.reload("live", bundle).unwrap();
        assert_eq!(
            router.retired_backlog(),
            0,
            "reload {i} left unjoined pools behind"
        );
    }

    // register() sweeps too: park another stale pool, then watch a plain
    // registration collect it.
    let held = router.resolve("live").unwrap();
    router.reload("live", Arc::clone(&v1)).unwrap();
    assert_eq!(router.retired_backlog(), 1);
    drop(held);
    router
        .register("sibling", Arc::clone(&v2), ModelConfig::default())
        .unwrap();
    assert_eq!(
        router.retired_backlog(),
        0,
        "register must sweep the stale pool"
    );

    // The explicit sweep remains available but has nothing left to do.
    assert_eq!(router.sweep_retired(), 0);

    // The books balance without shutdown() having had to catch strays:
    // every retired pool was already joined when the audit runs.
    let stats = router.shutdown();
    assert_eq!(stats.pools_joined, stats.pools_retired);
    assert_eq!(stats.pools_leaked, 0);
}

#[test]
fn per_model_metrics_render_without_aliasing() {
    let router = ModelRouter::new(RouterConfig::default());
    let alpha = trained_bundle(11);
    let beta = trained_bundle(1234);
    router
        .register("alpha", alpha, ModelConfig::default())
        .unwrap();
    router
        .register("beta", beta, ModelConfig::default())
        .unwrap();
    let graphs = request_graphs(2);
    router.predict("alpha", graphs[0].clone()).unwrap();
    router.predict("beta", graphs[1].clone()).unwrap();

    let text = router.render_metrics();
    // Router-level instruments render unlabelled…
    assert!(text.contains("deepmap_router_requests_routed"), "{text}");
    assert!(text.contains("deepmap_router_models_resident 2"), "{text}");
    // …and every resident model's serve instruments carry its own label,
    // so the two pools' counters never alias. Since PR 8 the engine
    // counters also carry the trace-stage they observe.
    for model in ["alpha", "beta"] {
        let labeled =
            format!("deepmap_serve_requests_completed{{model=\"{model}\",stage=\"infer_end\"}}");
        assert!(text.contains(&labeled), "missing {labeled} in:\n{text}");
    }
    router.shutdown();
}
