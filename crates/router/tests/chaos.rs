//! Per-tenant fault isolation: one model's replica pool is poisoned with a
//! deterministic [`FaultPlan`] until its breaker opens, while a sibling
//! model — its own pool, its own breaker — keeps serving untouched. The
//! blast radius of a bad deploy is exactly one registry entry.

#![cfg(feature = "fault-inject")]

mod common;

use common::{request_graphs, trained_bundle};
use deepmap_router::{ModelConfig, ModelRouter, RouterConfig, RouterError};
use deepmap_serve::{FaultPlan, Health, ResilienceConfig, ServeError, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Silences the planned worker panics so test output stays readable;
/// anything not marked `fault-inject:` still prints.
fn muffle_planned_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let planned = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("fault-inject:"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("fault-inject:"))
            })
            .unwrap_or(false);
        if !planned {
            default_hook(info);
        }
    }));
}

#[test]
fn poisoned_model_trips_its_own_breaker_while_sibling_serves() {
    muffle_planned_panics();
    let router = ModelRouter::new(RouterConfig::default());
    let stable_bundle = trained_bundle(11);
    let mut direct = stable_bundle.predictor().unwrap();
    router
        .register("stable", Arc::clone(&stable_bundle), ModelConfig::default())
        .unwrap();

    // The victim's plan panics every batch from the start; a zero restart
    // budget means the first panic trips its breaker. The long cool-down
    // keeps it open for the rest of the test.
    let victim_config = ModelConfig {
        server: ServerConfig {
            workers: 2,
            max_batch: 1,
            ..ServerConfig::default()
        },
        resilience: ResilienceConfig {
            max_restarts: 0,
            breaker_cooldown: Duration::from_secs(120),
            ..ResilienceConfig::default()
        },
        ..ModelConfig::default()
    };
    router
        .register_chaos(
            "victim",
            trained_bundle(1234),
            victim_config,
            FaultPlan::new().panic_from(0),
        )
        .unwrap();

    let graphs = request_graphs(4);

    // Detonate the victim: its first request panics the worker, and with no
    // restart budget the pool goes dark.
    match router.predict("victim", graphs[0].clone()) {
        Ok(served) => panic!("poisoned pool served class {}", served.class),
        Err(RouterError::Serve(ServeError::WorkerPanic)) => {}
        Err(other) => panic!("expected WorkerPanic, got {other}"),
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while router.health("victim").unwrap() != Health::Unavailable && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(router.health("victim").unwrap(), Health::Unavailable);

    // Inside the cool-down the victim fast-fails with its own breaker…
    assert!(matches!(
        router.predict("victim", graphs[1].clone()),
        Err(RouterError::Serve(ServeError::CircuitOpen))
    ));

    // …while the sibling pool never noticed: correct answers, Ready health.
    for graph in &graphs {
        let got = router.predict("stable", graph.clone()).unwrap();
        let want = direct.predict(graph);
        assert_eq!(got.class, want.class);
        assert_eq!(got.scores, want.scores);
    }
    assert_eq!(router.health("stable").unwrap(), Health::Ready);

    // The listing and the labelled rendering tell the two pools apart.
    let models = router.list_models();
    assert_eq!(models.len(), 2);
    let stable = models.iter().find(|m| m.name == "stable").unwrap();
    let victim = models.iter().find(|m| m.name == "victim").unwrap();
    assert_eq!(stable.health, Health::Ready);
    assert_eq!(victim.health, Health::Unavailable);
    let text = router.render_metrics();
    assert!(
        text.contains("deepmap_serve_worker_panics{model=\"victim\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("deepmap_serve_worker_panics{model=\"stable\"} 0"),
        "{text}"
    );

    // A hot reload replaces the poisoned pool with a clean one — recovery
    // is a deploy, not a restart of the whole tenancy.
    let victim_bundle = trained_bundle(1234);
    let mut direct_victim = victim_bundle.predictor().unwrap();
    let version = router.reload("victim", victim_bundle).unwrap();
    assert_eq!(version, 2);
    let healed = router.predict("victim", graphs[0].clone()).unwrap();
    assert_eq!(healed.scores, direct_victim.predict(&graphs[0]).scores);
    assert_eq!(router.health("victim").unwrap(), Health::Ready);

    // Even the poisoned pool's threads are joined on the way out.
    let stats = router.shutdown();
    assert_eq!(stats.pools_retired, 3, "reload + two resident at shutdown");
    assert_eq!(stats.pools_joined, 3);
    assert_eq!(stats.pools_leaked, 0);
}
