//! The model registry: named replica pools, hot reload with atomic swap,
//! and per-model metrics.
//!
//! ```text
//! register(name, bundle)  → build pool → self-test probe → insert
//! resolve(name)           → Arc<InferenceServer>   (lock-scoped lookup)
//! reload(name, bundle)    → build new pool → probe → swap Arc → retire old
//! unregister(name)        → remove → retire
//! shutdown()              → retire all → drain → join → RouterStats
//! ```
//!
//! **Swap semantics.** Every request path clones the model's
//! `Arc<InferenceServer>` out of the registry before submitting, so a
//! reload never races a request: in-flight requests keep the old pool
//! alive through their own `Arc` clones, new requests see the new pool
//! from the instant the map entry is swapped. A retired pool is joined —
//! batcher and every worker thread — as soon as its last in-flight user
//! drops, audited through [`InferenceServer::thread_count`]; nothing is
//! detached.
//!
//! **Probe gate.** A candidate pool must answer a self-test predict before
//! it can replace anything. A bundle whose replicas cannot be built, or
//! whose pool panics, times out, or is already shut down on the probe,
//! never reaches the map — the resident model keeps serving. A typed
//! admission rejection passes the gate (the pool demonstrably answered);
//! only infrastructure failures block a deploy.
//!
//! **Per-model instruments.** Each pool carries its own `serve.*` registry;
//! [`ModelRouter::render_metrics`] renders every resident model's registry
//! with a `model="<name>"` label plus the router's own `router.*`
//! instruments, so tenants never alias in one Prometheus scrape. Lifecycle
//! operations additionally open spans (`router.register`, `router.reload`,
//! `router.unregister`) on the global obs registry with a `model` field,
//! making tenants distinguishable in JSONL traces too.

use crate::config::{ModelConfig, RouterConfig};
use crate::error::{validate_name, RouterError};
use deepmap_graph::Graph;
use deepmap_obs::{Counter, Gauge, Registry, TraceLevel};
#[cfg(feature = "fault-inject")]
use deepmap_serve::FaultPlan;
use deepmap_serve::{
    Health, InferenceServer, ModelBundle, PredictionHandle, ServeError, ServedPrediction,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One resident model: its live replica pool, the config that built it,
/// and a version that bumps on every successful reload.
struct Entry {
    engine: Arc<InferenceServer>,
    bundle: Arc<ModelBundle>,
    config: ModelConfig,
    version: u64,
}

/// A replaced or unregistered pool waiting for its last in-flight user.
struct Retired {
    name: String,
    version: u64,
    engine: Arc<InferenceServer>,
}

/// Point-in-time description of one resident model, from
/// [`ModelRouter::list_models`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// Registered name.
    pub name: String,
    /// Bumps on every successful reload; starts at 1.
    pub version: u64,
    /// Whether the empty wire name routes here.
    pub is_default: bool,
    /// The pool's health right now.
    pub health: Health,
    /// Worker replicas in the pool.
    pub workers: usize,
    /// Classes the bundle predicts over.
    pub n_classes: usize,
}

/// Final accounting returned by [`ModelRouter::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterStats {
    /// Successful `register`/`register_engine` calls over the lifetime.
    pub registrations: u64,
    /// Successful hot reloads (each retired one pool).
    pub reloads: u64,
    /// Pools retired over the lifetime (reloads + unregisters + shutdown).
    pub pools_retired: u64,
    /// Retired pools whose threads were joined (must equal
    /// `pools_retired` for a leak-free life).
    pub pools_joined: u64,
    /// Threads joined across those pools (batcher + workers each).
    pub threads_joined: u64,
    /// Pools still referenced by in-flight users when the drain deadline
    /// passed (0 for a clean shutdown). Their threads join when the last
    /// holder drops, but past the audit.
    pub pools_leaked: usize,
}

/// The router's own instruments, on a dedicated always-live registry the
/// network tier also hangs its `serve.conn_*` edge counters on.
struct RouterMetrics {
    registry: Arc<Registry>,
    routed: Arc<Counter>,
    unknown_model: Arc<Counter>,
    registrations: Arc<Counter>,
    reloads: Arc<Counter>,
    unregistrations: Arc<Counter>,
    probe_failures: Arc<Counter>,
    pools_retired: Arc<Counter>,
    pools_joined: Arc<Counter>,
    threads_joined: Arc<Counter>,
    models_resident: Arc<Gauge>,
}

impl RouterMetrics {
    fn new() -> RouterMetrics {
        let registry = Arc::new(Registry::new(TraceLevel::Summary));
        RouterMetrics {
            routed: registry.counter("router.requests_routed"),
            unknown_model: registry.counter("router.unknown_model"),
            registrations: registry.counter("router.registrations"),
            reloads: registry.counter("router.reloads"),
            unregistrations: registry.counter("router.unregistrations"),
            probe_failures: registry.counter("router.probe_failures"),
            pools_retired: registry.counter("router.pools_retired"),
            pools_joined: registry.counter("router.pools_joined"),
            threads_joined: registry.counter("router.threads_joined"),
            models_resident: registry.gauge("router.models_resident"),
            registry,
        }
    }
}

struct Inner {
    models: HashMap<String, Entry>,
    default: Option<String>,
    retired: Vec<Retired>,
    shut_down: bool,
}

/// A thread-safe, multi-tenant model registry: many named bundles resident
/// at once, each behind its own [`InferenceServer`] replica pool, with
/// zero-downtime hot reload. See the [module docs](self) for the swap and
/// probe semantics.
pub struct ModelRouter {
    inner: Mutex<Inner>,
    config: RouterConfig,
    metrics: RouterMetrics,
}

impl ModelRouter {
    /// An empty router. The first registered model becomes the default.
    pub fn new(config: RouterConfig) -> ModelRouter {
        ModelRouter {
            inner: Mutex::new(Inner {
                models: HashMap::new(),
                default: None,
                retired: Vec::new(),
                shut_down: false,
            }),
            config,
            metrics: RouterMetrics::new(),
        }
    }

    /// Builds a replica pool from `bundle` under `config`, probes it with a
    /// self-test predict, and makes it resident under `name`. The first
    /// registered model becomes the default. Fails with
    /// [`RouterError::AlreadyRegistered`] if the name is taken — replacing
    /// a resident model is [`reload`](ModelRouter::reload)'s job.
    pub fn register(
        &self,
        name: &str,
        bundle: Arc<ModelBundle>,
        config: ModelConfig,
    ) -> Result<(), RouterError> {
        validate_name(name)?;
        let _span = deepmap_obs::span("router.register").with_str("model", name);
        {
            let inner = self.lock();
            if inner.shut_down {
                return Err(RouterError::ShutDown);
            }
            if inner.models.contains_key(name) {
                return Err(RouterError::AlreadyRegistered(name.to_string()));
            }
        }
        // Build and probe outside the lock: sibling models keep routing
        // while the candidate warms up.
        let engine = self.build_and_probe(name, &bundle, &config)?;
        let mut inner = self.lock();
        if inner.shut_down {
            return Err(RouterError::ShutDown);
        }
        if inner.models.contains_key(name) {
            // Raced another register of the same name; the candidate pool
            // drops (its own Drop joins the threads).
            return Err(RouterError::AlreadyRegistered(name.to_string()));
        }
        inner.models.insert(
            name.to_string(),
            Entry {
                engine: Arc::new(engine),
                bundle,
                config,
                version: 1,
            },
        );
        if inner.default.is_none() {
            inner.default = Some(name.to_string());
        }
        drop(inner); // sweep_retired re-locks; holding the guard would deadlock
        self.metrics.registrations.inc();
        self.metrics.models_resident.add(1);
        self.sweep_retired();
        Ok(())
    }

    /// Adopts an already-running pool under `name` — the compatibility path
    /// the network tier uses to wrap a bare [`InferenceServer`] into a
    /// single-model router. The adopted pool skips the probe (it is
    /// serving already) and records `config` for future reloads.
    pub fn register_engine(
        &self,
        name: &str,
        engine: InferenceServer,
        config: ModelConfig,
    ) -> Result<(), RouterError> {
        validate_name(name)?;
        let bundle = Arc::clone(engine.bundle());
        let mut inner = self.lock();
        if inner.shut_down {
            return Err(RouterError::ShutDown);
        }
        if inner.models.contains_key(name) {
            return Err(RouterError::AlreadyRegistered(name.to_string()));
        }
        inner.models.insert(
            name.to_string(),
            Entry {
                engine: Arc::new(engine),
                bundle,
                config,
                version: 1,
            },
        );
        if inner.default.is_none() {
            inner.default = Some(name.to_string());
        }
        drop(inner); // sweep_retired re-locks; holding the guard would deadlock
        self.metrics.registrations.inc();
        self.metrics.models_resident.add(1);
        self.sweep_retired();
        Ok(())
    }

    /// Hot reload with atomic swap: builds a new pool from `bundle` under
    /// the entry's stored config, probes it, then swaps it in. In-flight
    /// requests on the old pool finish on their own `Arc` clones; the old
    /// pool's threads are joined once the last clone drops (audited in
    /// [`RouterStats`]). Returns the new version. A failed build or probe
    /// leaves the resident pool untouched.
    pub fn reload(&self, name: &str, bundle: Arc<ModelBundle>) -> Result<u64, RouterError> {
        let _span = deepmap_obs::span("router.reload").with_str("model", name);
        let config = {
            let inner = self.lock();
            if inner.shut_down {
                return Err(RouterError::ShutDown);
            }
            inner
                .models
                .get(name)
                .ok_or_else(|| RouterError::UnknownModel(name.to_string()))?
                .config
                .clone()
        };
        let engine = self.build_and_probe(name, &bundle, &config)?;
        let version = {
            let mut inner = self.lock();
            if inner.shut_down {
                return Err(RouterError::ShutDown);
            }
            let entry = inner
                .models
                .get_mut(name)
                .ok_or_else(|| RouterError::UnknownModel(name.to_string()))?;
            let old = std::mem::replace(&mut entry.engine, Arc::new(engine));
            let old_version = entry.version;
            entry.version += 1;
            entry.bundle = bundle;
            let version = entry.version;
            inner.retired.push(Retired {
                name: name.to_string(),
                version: old_version,
                engine: old,
            });
            version
        };
        self.metrics.reloads.inc();
        self.metrics.pools_retired.inc();
        self.sweep_retired();
        Ok(version)
    }

    /// Removes `name` from the registry. The pool drains: in-flight
    /// requests finish, then its threads are joined (audited). If `name`
    /// was the default, the router is left with no default until
    /// [`set_default`](ModelRouter::set_default) names one.
    pub fn unregister(&self, name: &str) -> Result<(), RouterError> {
        let _span = deepmap_obs::span("router.unregister").with_str("model", name);
        {
            let mut inner = self.lock();
            if inner.shut_down {
                return Err(RouterError::ShutDown);
            }
            let entry = inner
                .models
                .remove(name)
                .ok_or_else(|| RouterError::UnknownModel(name.to_string()))?;
            if inner.default.as_deref() == Some(name) {
                inner.default = None;
            }
            inner.retired.push(Retired {
                name: name.to_string(),
                version: entry.version,
                engine: entry.engine,
            });
        }
        self.metrics.unregistrations.inc();
        self.metrics.pools_retired.inc();
        self.metrics.models_resident.add(-1);
        self.sweep_retired();
        Ok(())
    }

    /// Routes the empty wire name to `name` from now on.
    pub fn set_default(&self, name: &str) -> Result<(), RouterError> {
        let mut inner = self.lock();
        if inner.shut_down {
            return Err(RouterError::ShutDown);
        }
        if !inner.models.contains_key(name) {
            return Err(RouterError::UnknownModel(name.to_string()));
        }
        inner.default = Some(name.to_string());
        Ok(())
    }

    /// The current default model's name, if one is set.
    pub fn default_model(&self) -> Option<String> {
        self.lock().default.clone()
    }

    /// Resolves `name` (empty: the default model) to its live replica
    /// pool. The returned `Arc` keeps that pool alive across a concurrent
    /// reload, which is exactly what makes the swap safe for in-flight
    /// requests.
    pub fn resolve(&self, name: &str) -> Result<Arc<InferenceServer>, RouterError> {
        let inner = self.lock();
        if inner.shut_down {
            return Err(RouterError::ShutDown);
        }
        let resolved = if name.is_empty() {
            let default = inner.default.as_deref().ok_or(RouterError::NoDefaultModel);
            match default {
                Ok(default) => inner.models.get(default),
                Err(e) => {
                    self.metrics.unknown_model.inc();
                    return Err(e);
                }
            }
        } else {
            inner.models.get(name)
        };
        match resolved {
            Some(entry) => {
                self.metrics.routed.inc();
                Ok(Arc::clone(&entry.engine))
            }
            None => {
                self.metrics.unknown_model.inc();
                Err(RouterError::UnknownModel(name.to_string()))
            }
        }
    }

    /// Submits `graph` to the named model's pool (empty name: default).
    pub fn submit(&self, name: &str, graph: Graph) -> Result<PredictionHandle, RouterError> {
        let engine = self.resolve(name)?;
        engine.submit(graph).map_err(RouterError::Serve)
    }

    /// [`submit`](ModelRouter::submit) with a caller-provided trace
    /// context — how the net edge threads trace ids (minted at frame
    /// arrival or adopted from the wire trailer) through the router into
    /// the engine's batcher and workers.
    pub fn submit_traced(
        &self,
        name: &str,
        graph: Graph,
        ctx: deepmap_serve::RequestCtx,
    ) -> Result<PredictionHandle, RouterError> {
        let engine = self.resolve(name)?;
        engine
            .submit_traced(graph, None, ctx)
            .map_err(RouterError::Serve)
    }

    /// Submits and blocks for the answer.
    pub fn predict(&self, name: &str, graph: Graph) -> Result<ServedPrediction, RouterError> {
        let engine = self.resolve(name)?;
        engine.predict(graph).map_err(RouterError::Serve)
    }

    /// The named model's health (empty name: default model).
    pub fn health(&self, name: &str) -> Result<Health, RouterError> {
        Ok(self.resolve(name)?.health())
    }

    /// Every resident model, sorted by name.
    pub fn list_models(&self) -> Vec<ModelInfo> {
        let inner = self.lock();
        let mut models: Vec<ModelInfo> = inner
            .models
            .iter()
            .map(|(name, entry)| ModelInfo {
                name: name.clone(),
                version: entry.version,
                is_default: inner.default.as_deref() == Some(name.as_str()),
                health: entry.engine.health(),
                workers: entry.config.server.workers.max(1),
                n_classes: entry.bundle.n_classes(),
            })
            .collect();
        models.sort_by(|a, b| a.name.cmp(&b.name));
        models
    }

    /// The router's own always-live registry (`router.*` instruments; the
    /// network tier also registers its `serve.conn_*` edge counters here).
    pub fn metrics_registry(&self) -> Arc<Registry> {
        Arc::clone(&self.metrics.registry)
    }

    /// One Prometheus rendering for the whole tenancy: the router's own
    /// instruments unlabelled, then every resident model's `serve.*`
    /// registry labelled `model="<name>"` — per-model counters never alias,
    /// however many bundles are resident.
    pub fn render_metrics(&self) -> String {
        let mut out = self.metrics.registry.render_prometheus();
        let engines: Vec<(String, Arc<InferenceServer>)> = {
            let inner = self.lock();
            let mut engines: Vec<_> = inner
                .models
                .iter()
                .map(|(name, entry)| (name.clone(), Arc::clone(&entry.engine)))
                .collect();
            engines.sort_by(|a, b| a.0.cmp(&b.0));
            engines
        };
        for (name, engine) in engines {
            out.push_str(
                &engine
                    .metrics_registry()
                    .render_prometheus_labeled(&[("model", &name)]),
            );
        }
        out
    }

    /// The whole tenancy's flight recorders as one JSONL document: every
    /// resident model's retained request records, each line tagged with
    /// `"model"`, models in name order and records oldest-first within a
    /// model. This is what the wire-level `TraceDump` admin frame returns.
    pub fn trace_dump(&self) -> String {
        let engines: Vec<(String, Arc<InferenceServer>)> = {
            let inner = self.lock();
            let mut engines: Vec<_> = inner
                .models
                .iter()
                .map(|(name, entry)| (name.clone(), Arc::clone(&entry.engine)))
                .collect();
            engines.sort_by(|a, b| a.0.cmp(&b.0));
            engines
        };
        let mut out = String::new();
        for (name, engine) in engines {
            render_records(&mut out, &name, &engine);
        }
        out
    }

    /// [`trace_dump`](ModelRouter::trace_dump) for one model (empty name:
    /// default model).
    pub fn trace_dump_of(&self, name: &str) -> Result<String, RouterError> {
        let engine = self.resolve(name)?;
        let label = if name.is_empty() {
            self.default_model().unwrap_or_default()
        } else {
            name.to_string()
        };
        let mut out = String::new();
        render_records(&mut out, &label, &engine);
        Ok(out)
    }

    /// Retires every model, waits up to the configured drain deadline for
    /// retired pools to lose their in-flight users, joins them, and returns
    /// the final accounting. Idempotent: later calls return the same stats.
    pub fn shutdown(&self) -> RouterStats {
        {
            let mut inner = self.lock();
            if !inner.shut_down {
                inner.shut_down = true;
                inner.default = None;
                let names: Vec<String> = inner.models.keys().cloned().collect();
                for name in names {
                    if let Some(entry) = inner.models.remove(&name) {
                        inner.retired.push(Retired {
                            name,
                            version: entry.version,
                            engine: entry.engine,
                        });
                        self.metrics.pools_retired.inc();
                        self.metrics.models_resident.add(-1);
                    }
                }
            }
        }
        let deadline = Instant::now() + self.config.drain_deadline;
        loop {
            self.sweep_retired();
            let remaining = self.lock().retired.len();
            if remaining == 0 || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let pools_leaked = self.lock().retired.len();
        RouterStats {
            registrations: self.metrics.registrations.get(),
            reloads: self.metrics.reloads.get(),
            pools_retired: self.metrics.pools_retired.get(),
            pools_joined: self.metrics.pools_joined.get(),
            threads_joined: self.metrics.threads_joined.get(),
            pools_leaked,
        }
    }

    /// Pools retired but not yet joined — waiting on a still-in-flight
    /// user. Every lifecycle operation (register, reload, unregister)
    /// sweeps opportunistically, so over repeated hot swaps this converges
    /// to 0 without anyone calling [`sweep_retired`](Self::sweep_retired)
    /// by hand; a persistently non-zero backlog means some client is
    /// sitting on an old pool's `Arc`.
    pub fn retired_backlog(&self) -> usize {
        self.lock().retired.len()
    }

    /// Joins every retired pool whose last in-flight user is gone and
    /// returns how many pools were joined. Runs opportunistically on every
    /// register/reload/unregister and in a loop by
    /// [`shutdown`](ModelRouter::shutdown) — callers never *need* to
    /// invoke it, but long-idle deployments that want a retired pool's
    /// threads back before the next lifecycle operation may. Cheap when
    /// there is nothing to do; joining happens outside the registry lock
    /// so routing never blocks behind a pool teardown.
    pub fn sweep_retired(&self) -> usize {
        let ready: Vec<Retired> = {
            let mut inner = self.lock();
            let mut ready = Vec::new();
            let mut keep = Vec::new();
            for retired in inner.retired.drain(..) {
                // strong_count == 1 ⇒ the registry holds the only Arc; no
                // in-flight request can clone it again (it left the map
                // when it was retired), so the unwrap below cannot race.
                if Arc::strong_count(&retired.engine) == 1 {
                    ready.push(retired);
                } else {
                    keep.push(retired);
                }
            }
            inner.retired = keep;
            ready
        };
        let mut joined = 0usize;
        for retired in ready {
            match Arc::try_unwrap(retired.engine) {
                Ok(mut engine) => {
                    let threads = engine.thread_count();
                    engine.shutdown();
                    debug_assert_eq!(engine.thread_count(), 0);
                    joined += 1;
                    self.metrics.pools_joined.inc();
                    self.metrics.threads_joined.add(threads as u64);
                    deepmap_obs::event(
                        deepmap_obs::EventLevel::Info,
                        &format!(
                            "router: joined retired pool {}@v{} ({threads} threads)",
                            retired.name, retired.version
                        ),
                    );
                }
                Err(engine) => {
                    // A clone appeared between the count check and here —
                    // impossible for unreachable pools, but never leak on a
                    // bad assumption: put it back for the next sweep.
                    self.lock().retired.push(Retired {
                        name: retired.name,
                        version: retired.version,
                        engine,
                    });
                }
            }
        }
        joined
    }

    /// Builds a pool from `bundle` under `config` and gates it behind the
    /// self-test probe. On failure the candidate (if it started) is torn
    /// down before returning.
    fn build_and_probe(
        &self,
        name: &str,
        bundle: &Arc<ModelBundle>,
        config: &ModelConfig,
    ) -> Result<InferenceServer, RouterError> {
        let engine = InferenceServer::start_with(
            Arc::clone(bundle),
            config.server,
            config.resilience.clone(),
        )?;
        self.probe(name, &engine, config)?;
        Ok(engine)
    }

    /// The self-test predict. Passing means the pool demonstrably answers:
    /// a prediction or a typed admission rejection both qualify; a panic,
    /// timeout, open breaker, or shutdown is an infrastructure failure and
    /// fails the gate.
    fn probe(
        &self,
        name: &str,
        engine: &InferenceServer,
        config: &ModelConfig,
    ) -> Result<(), RouterError> {
        let outcome = match engine.submit(config.probe()) {
            Ok(handle) => handle.wait_timeout(config.probe_timeout),
            Err(e) => Err(e),
        };
        match outcome {
            Ok(_) | Err(ServeError::Rejected { .. }) => Ok(()),
            Err(e) => {
                self.metrics.probe_failures.inc();
                Err(RouterError::ProbeFailed {
                    model: name.to_string(),
                    reason: e.to_string(),
                })
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned registry lock would otherwise wedge every tenant; the
        // inner state is a plain map plus flags, valid after any panic.
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(feature = "fault-inject")]
impl ModelRouter {
    /// [`register`](ModelRouter::register) with a deterministic
    /// [`FaultPlan`] wired into the model's workers — the per-tenant chaos
    /// entry point. The plan poisons only this model's pool; sibling
    /// models, with their own pools and plans, are untouched. Skips the
    /// probe (a plan that panics batch 0 would otherwise never register).
    pub fn register_chaos(
        &self,
        name: &str,
        bundle: Arc<ModelBundle>,
        config: ModelConfig,
        plan: FaultPlan,
    ) -> Result<(), RouterError> {
        validate_name(name)?;
        let engine = InferenceServer::start_chaos(
            Arc::clone(&bundle),
            config.server,
            config.resilience.clone(),
            plan,
        )?;
        let mut inner = self.lock();
        if inner.shut_down {
            return Err(RouterError::ShutDown);
        }
        if inner.models.contains_key(name) {
            return Err(RouterError::AlreadyRegistered(name.to_string()));
        }
        inner.models.insert(
            name.to_string(),
            Entry {
                engine: Arc::new(engine),
                bundle,
                config,
                version: 1,
            },
        );
        if inner.default.is_none() {
            inner.default = Some(name.to_string());
        }
        drop(inner); // sweep_retired re-locks; holding the guard would deadlock
        self.metrics.registrations.inc();
        self.metrics.models_resident.add(1);
        self.sweep_retired();
        Ok(())
    }
}

/// Appends one model's flight-recorder records to `out` as JSONL, tagging
/// each line with the model name right after the trace id.
fn render_records(out: &mut String, model: &str, engine: &InferenceServer) {
    use deepmap_obs::json::Json;
    for record in engine.flight_recorder().snapshot() {
        let mut fields = match record.to_json() {
            Json::Obj(fields) => fields,
            other => vec![("record".to_string(), other)],
        };
        fields.insert(1, ("model".to_string(), Json::Str(model.to_string())));
        out.push_str(&Json::Obj(fields).to_json());
        out.push('\n');
    }
}

impl Drop for ModelRouter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ModelRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("ModelRouter")
            .field("models", &inner.models.len())
            .field("default", &inner.default)
            .field("retired", &inner.retired.len())
            .field("shut_down", &inner.shut_down)
            .finish()
    }
}
