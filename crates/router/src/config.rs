//! Per-model and router-wide configuration.

use deepmap_graph::builder::graph_from_edges;
use deepmap_graph::Graph;
use deepmap_serve::{ResilienceConfig, ServerConfig};
use std::time::Duration;

/// Everything one resident model needs beyond its bundle: pool sizing,
/// resilience policy, and the self-test probe that gates hot swaps.
///
/// The config is stored with the registry entry, so
/// [`reload`](crate::ModelRouter::reload) rebuilds the replacement pool
/// exactly as the resident one was built — a hot swap changes the weights,
/// never silently the serving policy.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Replica-pool sizing and batching knobs, per model.
    pub server: ServerConfig,
    /// Admission limits, deadlines, restart budget, and breaker policy,
    /// per model.
    pub resilience: ResilienceConfig,
    /// How long the self-test predict may take before a candidate pool is
    /// declared dead. Covers first-request warm-up, so it is generous.
    pub probe_timeout: Duration,
    /// The graph used for the self-test predict (`None`: a built-in labeled
    /// triangle). Any answer — or a typed admission rejection — passes the
    /// probe; only infrastructure failures (panic, timeout, dead pool)
    /// fail it, so a strict admission policy does not block deploys.
    pub probe_graph: Option<Graph>,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            server: ServerConfig::default(),
            resilience: ResilienceConfig::default(),
            probe_timeout: Duration::from_secs(30),
            probe_graph: None,
        }
    }
}

impl ModelConfig {
    /// The probe graph: the configured one, or the built-in triangle.
    pub(crate) fn probe(&self) -> Graph {
        match &self.probe_graph {
            Some(graph) => graph.clone(),
            None => graph_from_edges(3, &[(0, 1), (1, 2), (0, 2)], Some(&[0, 0, 0]))
                .expect("triangle probe graph is well-formed"),
        }
    }
}

/// Router-wide knobs.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// How long [`shutdown`](crate::ModelRouter::shutdown) waits for
    /// retired replica pools to lose their last in-flight user before it
    /// gives up and reports them as leaked.
    pub drain_deadline: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            drain_deadline: Duration::from_secs(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_probe_is_the_builtin_triangle() {
        let config = ModelConfig::default();
        let probe = config.probe();
        assert_eq!(probe.n_vertices(), 3);
    }

    #[test]
    fn configured_probe_graph_wins() {
        let custom = graph_from_edges(2, &[(0, 1)], Some(&[1, 1])).unwrap();
        let config = ModelConfig {
            probe_graph: Some(custom),
            ..ModelConfig::default()
        };
        assert_eq!(config.probe().n_vertices(), 2);
    }
}
