//! `deepmap-router`: multi-tenant model routing between the network tier
//! and the inference engine.
//!
//! PR 6's TCP front end serves exactly one model per process; this crate
//! removes that assumption. A [`ModelRouter`] keeps many **named**
//! [`ModelBundle`](deepmap_serve::ModelBundle)s resident at once, each
//! behind its own [`InferenceServer`](deepmap_serve::InferenceServer)
//! replica pool with its own admission limits, deadlines, circuit breaker,
//! and `serve.*` instruments — one tenant's poisoned workers trip *its*
//! breaker while its siblings keep serving.
//!
//! - [`registry`] — the [`ModelRouter`]: register / resolve / reload /
//!   unregister, the self-test probe gate, atomic `Arc` swap with audited
//!   retired-pool joining, and the labelled multi-tenant Prometheus
//!   rendering.
//! - [`config`] — [`ModelConfig`] (per-model pool + resilience + probe
//!   policy, stored with the entry so reloads rebuild pools identically)
//!   and [`RouterConfig`].
//! - [`error`] — the typed [`RouterError`] taxonomy, including
//!   [`RouterError::UnknownModel`], which the wire protocol mirrors as its
//!   own error code.
//!
//! **Hot reload is zero-downtime by construction**: the replacement pool is
//! built and health-probed *before* the registry entry swaps, requests
//! in flight on the old pool finish on their own `Arc` clones, and the old
//! pool's batcher and worker threads are joined (and counted in
//! [`RouterStats`]) once the last clone drops.

#![deny(missing_docs)]

pub mod config;
pub mod error;
pub mod registry;

pub use config::{ModelConfig, RouterConfig};
pub use error::{RouterError, MAX_MODEL_NAME};
pub use registry::{ModelInfo, ModelRouter, RouterStats};
