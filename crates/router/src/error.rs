//! Typed routing errors.

use deepmap_serve::ServeError;
use std::fmt;

/// Longest accepted model name, in bytes. Mirrored by the wire protocol's
/// model-name field limit so a name that registers always routes.
pub const MAX_MODEL_NAME: usize = 128;

/// Errors from the model registry and routing layer.
#[derive(Debug)]
pub enum RouterError {
    /// No resident model has this name.
    UnknownModel(
        /// The name that failed to resolve.
        String,
    ),
    /// [`register`](crate::ModelRouter::register) refused to replace a
    /// resident model — use [`reload`](crate::ModelRouter::reload) for
    /// that, it swaps atomically instead of double-registering.
    AlreadyRegistered(
        /// The occupied name.
        String,
    ),
    /// The empty name routes to the default model; a request arrived for it
    /// while no default is set.
    NoDefaultModel,
    /// The model name is empty, longer than [`MAX_MODEL_NAME`] bytes, or
    /// contains control characters.
    InvalidName(
        /// Why the name was refused.
        String,
    ),
    /// The freshly built replica pool failed its self-test predict; the
    /// resident pool (if any) was left untouched.
    ProbeFailed {
        /// The model whose candidate pool failed.
        model: String,
        /// The self-test failure.
        reason: String,
    },
    /// The underlying serving layer failed (bundle rejected, pool failed to
    /// start, …).
    Serve(ServeError),
    /// The router has shut down; no model can be resolved or registered.
    ShutDown,
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            RouterError::AlreadyRegistered(name) => {
                write!(
                    f,
                    "model {name:?} is already registered (use reload to swap)"
                )
            }
            RouterError::NoDefaultModel => write!(f, "no default model is set"),
            RouterError::InvalidName(why) => write!(f, "invalid model name: {why}"),
            RouterError::ProbeFailed { model, reason } => {
                write!(f, "self-test probe for model {model:?} failed: {reason}")
            }
            RouterError::Serve(e) => write!(f, "serving layer: {e}"),
            RouterError::ShutDown => write!(f, "model router shut down"),
        }
    }
}

impl std::error::Error for RouterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouterError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for RouterError {
    fn from(e: ServeError) -> Self {
        RouterError::Serve(e)
    }
}

/// Validates a model name for registration: non-empty, at most
/// [`MAX_MODEL_NAME`] bytes, no control characters (they would corrupt
/// Prometheus labels and log lines).
pub fn validate_name(name: &str) -> Result<(), RouterError> {
    if name.is_empty() {
        return Err(RouterError::InvalidName(
            "name is empty (the empty name is reserved for routing to the default model)".into(),
        ));
    }
    if name.len() > MAX_MODEL_NAME {
        return Err(RouterError::InvalidName(format!(
            "name is {} bytes, limit is {MAX_MODEL_NAME}",
            name.len()
        )));
    }
    if name.chars().any(|c| c.is_control() || c == '"') {
        return Err(RouterError::InvalidName(
            "name contains control or quote characters".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sane_names_pass() {
        for name in ["mutag", "nci1-v2", "Fraud Model (EU)", "模型", "a"] {
            assert!(validate_name(name).is_ok(), "{name:?} should be accepted");
        }
        // Exactly at the limit is fine.
        assert!(validate_name(&"x".repeat(MAX_MODEL_NAME)).is_ok());
    }

    #[test]
    fn hostile_names_are_refused() {
        let over = "x".repeat(MAX_MODEL_NAME + 1);
        for name in ["", over.as_str(), "new\nline", "tab\there", "qu\"ote"] {
            assert!(
                matches!(validate_name(name), Err(RouterError::InvalidName(_))),
                "{name:?} should be refused"
            );
        }
    }

    #[test]
    fn serve_errors_wrap_with_source() {
        let err = RouterError::from(ServeError::QueueFull);
        assert!(matches!(err, RouterError::Serve(ServeError::QueueFull)));
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("serving layer"));
    }
}
