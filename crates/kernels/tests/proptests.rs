//! Property-based tests for the kernel crate's invariants.

use deepmap_graph::{Graph, GraphBuilder};
use deepmap_kernels::feature_map::SparseVec;
use deepmap_kernels::graphlet::canonical_code;
use deepmap_kernels::{
    graph_feature_maps, kernel_matrix, vertex_feature_maps, FeatureKind, KernelMatrix,
};
use proptest::prelude::*;

/// Strategy: a random simple labeled graph with `3..=max_n` vertices.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..(2 * n));
        let labels = proptest::collection::vec(1u32..5, n);
        (Just(n), edges, labels).prop_map(|(n, edges, labels)| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                if u != v {
                    b.add_edge(u, v).expect("in range");
                }
            }
            b.set_labels(&labels).expect("count matches");
            b.build().expect("valid")
        })
    })
}

/// Applies a vertex permutation to a graph (`perm[old] = new`).
fn permuted(g: &Graph, perm: &[u32]) -> Graph {
    let n = g.n_vertices();
    let mut b = GraphBuilder::new(n);
    for (u, v) in g.edges() {
        b.add_edge(perm[u as usize], perm[v as usize])
            .expect("in range");
    }
    let mut labels = vec![0u32; n];
    for v in 0..n {
        labels[perm[v] as usize] = g.label(v as u32);
    }
    b.set_labels(&labels).expect("count");
    b.build().expect("valid")
}

fn arb_graph_and_permutation(max_n: usize) -> impl Strategy<Value = (Graph, Vec<u32>)> {
    arb_graph(max_n).prop_flat_map(|g| {
        let n = g.n_vertices();
        (
            Just(g),
            Just((0..n as u32).collect::<Vec<u32>>()).prop_shuffle(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Deterministic kernels (SP, WL) are isomorphism-invariant: the graph
    /// feature map of a permuted copy equals the original's.
    #[test]
    fn wl_and_sp_isomorphism_invariant((g, perm) in arb_graph_and_permutation(10)) {
        let h = permuted(&g, &perm);
        for kind in [FeatureKind::WlSubtree { iterations: 2 }, FeatureKind::ShortestPath] {
            let maps = graph_feature_maps(&[g.clone(), h.clone()], kind, 0);
            prop_assert_eq!(&maps[0], &maps[1], "{:?}", kind);
        }
    }

    /// Eq. 7 for WL: summing vertex maps reproduces the graph map exactly.
    #[test]
    fn wl_eq7(g in arb_graph(10)) {
        let vmaps = vertex_feature_maps(std::slice::from_ref(&g), FeatureKind::WlSubtree { iterations: 3 }, 0);
        let direct = graph_feature_maps(&[g], FeatureKind::WlSubtree { iterations: 3 }, 0);
        prop_assert_eq!(vmaps.sum_per_graph(), direct);
    }

    /// SP vertex maps double-count each unordered pair: total mass is
    /// exactly twice the classical SP kernel's (which counts `s < t` pairs
    /// once; `deepmap_kernels::sp::graph_feature_maps`).
    #[test]
    fn sp_vertex_mass_is_double(g in arb_graph(10)) {
        let vmaps = vertex_feature_maps(std::slice::from_ref(&g), FeatureKind::ShortestPath, 0);
        let summed = vmaps.sum_per_graph();
        let direct = deepmap_kernels::sp::graph_feature_maps(&[g]);
        prop_assert!((summed[0].total() - 2.0 * direct[0].total()).abs() < 1e-6);
    }

    /// Normalised Gram matrices satisfy the kernel axioms observable at this
    /// level: symmetry, unit diagonal (for non-empty maps), Cauchy–Schwarz.
    #[test]
    fn gram_axioms(graphs in proptest::collection::vec(arb_graph(8), 2..5)) {
        for kind in [FeatureKind::WlSubtree { iterations: 2 }, FeatureKind::ShortestPath] {
            let k = kernel_matrix(&graphs, kind, 1);
            prop_assert!(k.asymmetry() < 1e-12);
            for i in 0..k.n() {
                let kii = k.get(i, i);
                prop_assert!(kii == 0.0 || (kii - 1.0).abs() < 1e-9);
                for j in 0..k.n() {
                    prop_assert!(k.get(i, j) <= 1.0 + 1e-9, "CS violated: {}", k.get(i, j));
                }
            }
        }
    }

    /// PSD check via random quadratic forms: xᵀKx >= 0 for the linear
    /// kernel on sparse maps (exact PSD by construction).
    #[test]
    fn linear_kernel_psd(
        graphs in proptest::collection::vec(arb_graph(7), 2..5),
        coeffs in proptest::collection::vec(-1.0f64..1.0, 5),
    ) {
        let maps = graph_feature_maps(&graphs, FeatureKind::WlSubtree { iterations: 1 }, 0);
        let k = KernelMatrix::linear(&maps);
        let n = k.n();
        let x: Vec<f64> = (0..n).map(|i| coeffs[i % coeffs.len()]).collect();
        let mut quad = 0.0;
        for i in 0..n {
            for j in 0..n {
                quad += x[i] * x[j] * k.get(i, j);
            }
        }
        prop_assert!(quad >= -1e-6, "negative quadratic form {quad}");
    }

    /// Graphlet canonical codes are invariant under any ordering of the
    /// same vertex set.
    #[test]
    fn graphlet_code_order_invariant((g, _) in arb_graph_and_permutation(8), seed in 0u64..100) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = g.n_vertices();
        if n < 4 {
            return Ok(());
        }
        let mut verts: Vec<u32> = (0..4u32).collect();
        let code1 = canonical_code(&g, &verts);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        verts.shuffle(&mut rng);
        let code2 = canonical_code(&g, &verts);
        prop_assert_eq!(code1, code2);
    }

    /// SparseVec dot is symmetric and bounded by norms (Cauchy–Schwarz at
    /// the vector level).
    #[test]
    fn sparse_vec_dot_properties(
        a in proptest::collection::vec((0u32..30, 0.0f32..5.0), 0..10),
        b in proptest::collection::vec((0u32..30, 0.0f32..5.0), 0..10),
    ) {
        let va = SparseVec::from_pairs(a);
        let vb = SparseVec::from_pairs(b);
        prop_assert!((va.dot(&vb) - vb.dot(&va)).abs() < 1e-9);
        let bound = (va.norm_sq() * vb.norm_sq()).sqrt();
        prop_assert!(va.dot(&vb) <= bound + 1e-6);
    }

    /// Top-K truncation never increases dimension or per-vector mass.
    #[test]
    fn truncation_monotone(g in arb_graph(10), k in 1usize..20) {
        let maps = vertex_feature_maps(&[g], FeatureKind::WlSubtree { iterations: 2 }, 0);
        let t = maps.truncate_top_k(k);
        prop_assert!(t.dim <= maps.dim.max(k));
        prop_assert!(t.dim <= k || t.dim == maps.dim);
        for (orig_g, trunc_g) in maps.maps.iter().zip(&t.maps) {
            for (o, tv) in orig_g.iter().zip(trunc_g) {
                prop_assert!(tv.total() <= o.total() + 1e-6);
            }
        }
    }
}
