//! Graph Neural Tangent Kernel (GNTK, Du et al. 2019).
//!
//! The GNTK is the exact kernel of an infinitely wide GNN trained by
//! gradient descent. For a pair of graphs it is computed by a dynamic
//! program over `n₁ × n₂` covariance matrices:
//!
//! 1. **Input covariance** `Σ⁽⁰⁾[u,v] = ⟨h_u, h_v⟩` for one-hot label
//!    features.
//! 2. Per **BLOCK** (one GNN aggregation): neighbourhood aggregation
//!    `Σ ← c_u c_v Σ_{u'∈N(u)∪u, v'∈N(v)∪v} Σ[u',v']`, then `R` infinite-width
//!    ReLU MLP layers via the arc-cosine maps
//!    `κ₀(λ) = (π − arccos λ)/π`, `κ₁(λ) = (λ(π − arccos λ) + √(1−λ²))/π`,
//!    updating both the covariance `Σ` and the NTK `Θ` (`Θ ← Θ·κ₀ + Σ'`).
//! 3. **Readout**: sum of `Θ` over all vertex pairs (sum pooling).
//!
//! The normalisation `λ = Σ[u,v]/√(Σ₁[u,u]·Σ₂[v,v])` needs the *diagonal*
//! DPs of each graph with itself, so those are computed once per graph and
//! shared across all pairs.

use crate::kernel_matrix::KernelMatrix;
use deepmap_graph::{FxHashMap, Graph};

/// Hyper-parameters of the GNTK.
#[derive(Debug, Clone, Copy)]
pub struct GntkConfig {
    /// Number of GNN aggregation blocks `L`.
    pub blocks: usize,
    /// Fully-connected layers per block `R`.
    pub mlp_layers: usize,
    /// Scale aggregation by `1/(deg+1)` (the paper's `c_u`); `false` uses
    /// raw sums.
    pub degree_scaling: bool,
    /// Threads for Gram-matrix assembly.
    pub threads: usize,
}

impl Default for GntkConfig {
    fn default() -> Self {
        GntkConfig {
            blocks: 2,
            mlp_layers: 2,
            degree_scaling: true,
            threads: 1,
        }
    }
}

#[inline]
fn kappa0(lambda: f64) -> f64 {
    let l = lambda.clamp(-1.0, 1.0);
    (std::f64::consts::PI - l.acos()) / std::f64::consts::PI
}

#[inline]
fn kappa1(lambda: f64) -> f64 {
    let l = lambda.clamp(-1.0, 1.0);
    (l * (std::f64::consts::PI - l.acos()) + (1.0 - l * l).max(0.0).sqrt()) / std::f64::consts::PI
}

/// Dense `n1 × n2` matrix helper.
#[derive(Clone)]
struct Dp {
    n1: usize,
    n2: usize,
    data: Vec<f64>,
}

impl Dp {
    fn zeros(n1: usize, n2: usize) -> Self {
        Dp {
            n1,
            n2,
            data: vec![0.0; n1 * n2],
        }
    }

    #[inline]
    fn get(&self, u: usize, v: usize) -> f64 {
        self.data[u * self.n2 + v]
    }

    #[inline]
    fn set(&mut self, u: usize, v: usize, x: f64) {
        self.data[u * self.n2 + v] = x;
    }
}

fn one_hot_features(graph: &Graph, label_index: &FxHashMap<u32, usize>) -> Vec<usize> {
    graph
        .labels()
        .iter()
        .map(|l| *label_index.get(l).expect("label interned"))
        .collect()
}

fn input_covariance(g1: &Graph, f1: &[usize], g2: &Graph, f2: &[usize]) -> Dp {
    let mut dp = Dp::zeros(g1.n_vertices(), g2.n_vertices());
    for (u, &fu) in f1.iter().enumerate() {
        for (v, &fv) in f2.iter().enumerate() {
            dp.set(u, v, if fu == fv { 1.0 } else { 0.0 });
        }
    }
    dp
}

fn aggregate(g1: &Graph, g2: &Graph, sigma: &Dp, degree_scaling: bool) -> Dp {
    let (n1, n2) = (sigma.n1, sigma.n2);
    let mut out = Dp::zeros(n1, n2);
    for u in 0..n1 {
        let cu = if degree_scaling {
            1.0 / (g1.degree(u as u32) + 1) as f64
        } else {
            1.0
        };
        for v in 0..n2 {
            let cv = if degree_scaling {
                1.0 / (g2.degree(v as u32) + 1) as f64
            } else {
                1.0
            };
            let mut acc = sigma.get(u, v);
            for &up in g1.neighbors(u as u32) {
                acc += sigma.get(up as usize, v);
            }
            for &vp in g2.neighbors(v as u32) {
                acc += sigma.get(u, vp as usize);
            }
            for &up in g1.neighbors(u as u32) {
                for &vp in g2.neighbors(v as u32) {
                    acc += sigma.get(up as usize, vp as usize);
                }
            }
            out.set(u, v, cu * cv * acc);
        }
    }
    out
}

/// Per-graph diagonal DP: for each block/MLP layer, the vector of
/// `Σ[u,u]` values needed to normalise cross-graph covariances.
struct DiagTrace {
    /// `diags[step][u]` where steps enumerate (block, mlp-layer) pairs in
    /// execution order; step 0 is the input covariance diagonal.
    diags: Vec<Vec<f64>>,
}

#[allow(clippy::needless_range_loop)] // u/v index several aligned buffers
fn diagonal_trace(graph: &Graph, feats: &[usize], config: &GntkConfig) -> DiagTrace {
    let n = graph.n_vertices();
    let mut sigma = input_covariance(graph, feats, graph, feats);
    let mut diags = vec![(0..n).map(|u| sigma.get(u, u)).collect::<Vec<_>>()];
    for _ in 0..config.blocks {
        sigma = aggregate(graph, graph, &sigma, config.degree_scaling);
        for _ in 0..config.mlp_layers {
            let diag: Vec<f64> = (0..n).map(|u| sigma.get(u, u)).collect();
            diags.push(diag.clone());
            // Apply κ₁ with self-normalisation to advance Σ.
            let mut next = Dp::zeros(n, n);
            for u in 0..n {
                for v in 0..n {
                    let denom = (diag[u] * diag[v]).sqrt();
                    let lambda = if denom > 0.0 {
                        sigma.get(u, v) / denom
                    } else {
                        0.0
                    };
                    next.set(u, v, denom * kappa1(lambda));
                }
            }
            sigma = next;
        }
    }
    DiagTrace { diags }
}

/// The (unnormalised) GNTK value for one pair of graphs.
#[allow(clippy::needless_range_loop)] // u/v index several aligned buffers
fn pair_kernel(
    g1: &Graph,
    f1: &[usize],
    t1: &DiagTrace,
    g2: &Graph,
    f2: &[usize],
    t2: &DiagTrace,
    config: &GntkConfig,
) -> f64 {
    let (n1, n2) = (g1.n_vertices(), g2.n_vertices());
    if n1 == 0 || n2 == 0 {
        return 0.0;
    }
    let mut sigma = input_covariance(g1, f1, g2, f2);
    let mut theta = sigma.clone();
    let mut step = 1usize; // index into diag traces (step 0 = input diag)
    for _ in 0..config.blocks {
        sigma = aggregate(g1, g2, &sigma, config.degree_scaling);
        theta = aggregate(g1, g2, &theta, config.degree_scaling);
        for _ in 0..config.mlp_layers {
            let d1 = &t1.diags[step];
            let d2 = &t2.diags[step];
            let mut next_sigma = Dp::zeros(n1, n2);
            let mut next_theta = Dp::zeros(n1, n2);
            for u in 0..n1 {
                for v in 0..n2 {
                    let denom = (d1[u] * d2[v]).sqrt();
                    let lambda = if denom > 0.0 {
                        sigma.get(u, v) / denom
                    } else {
                        0.0
                    };
                    let s = denom * kappa1(lambda);
                    next_sigma.set(u, v, s);
                    next_theta.set(u, v, theta.get(u, v) * kappa0(lambda) + s);
                }
            }
            sigma = next_sigma;
            theta = next_theta;
            step += 1;
        }
    }
    // Sum-pooling readout.
    theta.data.iter().sum()
}

/// The cosine-normalised GNTK Gram matrix over a dataset, using one-hot
/// encodings of vertex labels as input features (the paper's protocol for
/// labeled benchmarks).
pub fn kernel_matrix(graphs: &[Graph], config: &GntkConfig) -> KernelMatrix {
    // Shared label index.
    let mut label_index: FxHashMap<u32, usize> = FxHashMap::default();
    for g in graphs {
        for &l in g.labels() {
            let next = label_index.len();
            label_index.entry(l).or_insert(next);
        }
    }
    let feats: Vec<Vec<usize>> = graphs
        .iter()
        .map(|g| one_hot_features(g, &label_index))
        .collect();
    let traces: Vec<DiagTrace> = graphs
        .iter()
        .zip(&feats)
        .map(|(g, f)| diagonal_trace(g, f, config))
        .collect();
    KernelMatrix::from_pairwise(graphs.len(), config.threads, |i, j| {
        pair_kernel(
            &graphs[i], &feats[i], &traces[i], &graphs[j], &feats[j], &traces[j], config,
        )
    })
    .normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_graph::builder::graph_from_edges;
    use deepmap_graph::generators::{complete_graph, cycle_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kappa_endpoints() {
        assert!((kappa0(1.0) - 1.0).abs() < 1e-12);
        assert!((kappa1(1.0) - 1.0).abs() < 1e-12);
        assert!((kappa0(-1.0) - 0.0).abs() < 1e-12);
        assert!((kappa1(-1.0) - 0.0).abs() < 1e-12);
        assert!((kappa0(0.0) - 0.5).abs() < 1e-12);
        assert!((kappa1(0.0) - 1.0 / std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn kappa_clamps_out_of_range() {
        assert!(kappa0(1.0 + 1e-9).is_finite());
        assert!(kappa1(-1.0 - 1e-9).is_finite());
    }

    #[test]
    fn gram_symmetric_unit_diagonal() {
        let mut rng = StdRng::seed_from_u64(1);
        let graphs = vec![
            cycle_graph(5, 0, &mut rng),
            cycle_graph(6, 0, &mut rng),
            complete_graph(5, 0, &mut rng),
        ];
        let k = kernel_matrix(&graphs, &GntkConfig::default());
        assert!(k.asymmetry() < 1e-9);
        for i in 0..3 {
            assert!((k.get(i, i) - 1.0).abs() < 1e-9, "diag {}", k.get(i, i));
        }
        for i in 0..3 {
            for j in 0..3 {
                assert!(k.get(i, j) <= 1.0 + 1e-9);
                assert!(k.get(i, j) >= -1e-9, "GNTK should be nonnegative here");
            }
        }
    }

    #[test]
    fn isomorphic_graphs_kernel_one() {
        let g1 = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)], Some(&[1, 2, 2, 1])).unwrap();
        let g2 = graph_from_edges(4, &[(3, 2), (2, 1), (1, 0)], Some(&[1, 2, 2, 1])).unwrap();
        let k = kernel_matrix(&[g1, g2], &GntkConfig::default());
        assert!((k.get(0, 1) - 1.0).abs() < 1e-9, "k = {}", k.get(0, 1));
    }

    /// Relabels every vertex with its degree (the paper's protocol for
    /// unlabeled datasets, §5.2).
    fn degree_labeled(g: Graph) -> Graph {
        let labels: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
        g.with_labels(labels).unwrap()
    }

    #[test]
    fn structure_discrimination_with_degree_labels() {
        // On unlabeled *regular* graphs with constant input features the
        // normalised GNTK degenerates to 1 for every pair, so — like the
        // paper — unlabeled graphs get degree labels first.
        let path6 = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)], None).unwrap();
        let path7 =
            graph_from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)], None).unwrap();
        let star6 = graph_from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)], None).unwrap();
        let graphs: Vec<Graph> = [path6, path7, star6]
            .map(degree_labeled)
            .into_iter()
            .collect();
        let k = kernel_matrix(&graphs, &GntkConfig::default());
        assert!(
            k.get(0, 1) > k.get(0, 2),
            "paths should be closer to each other: {} vs {}",
            k.get(0, 1),
            k.get(0, 2)
        );
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(3);
        let graphs: Vec<_> = (4..9).map(|n| cycle_graph(n, 0, &mut rng)).collect();
        let s = kernel_matrix(
            &graphs,
            &GntkConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let p = kernel_matrix(
            &graphs,
            &GntkConfig {
                threads: 3,
                ..Default::default()
            },
        );
        for i in 0..graphs.len() {
            for j in 0..graphs.len() {
                assert!((s.get(i, j) - p.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn empty_graph_zero_row() {
        let g0 = graph_from_edges(0, &[], None).unwrap();
        let g1 = graph_from_edges(2, &[(0, 1)], None).unwrap();
        let k = kernel_matrix(&[g0, g1], &GntkConfig::default());
        assert_eq!(k.get(0, 1), 0.0);
    }
}
