//! Graphlet kernel (GK) feature maps.
//!
//! Graph-level map (paper Eq. 2): frequencies of graphlet isomorphism
//! classes among `q` random samples. Vertex-level map (Definition 3):
//! frequencies among `q` samples of connected graphlets *containing* the
//! vertex — the DEEPMAP-GK input, "for each vertex, we randomly sample 20
//! graphlets of size five" (paper §5.3.1).
//!
//! Because the counts are sampled, vertex maps of corresponding vertices in
//! isomorphic graphs need not coincide exactly (the caveat after Theorem 1);
//! determinism under a fixed seed is still guaranteed.

use crate::feature_map::{intern_keyed, DatasetFeatureMaps, SparseVec, Vocabulary};
use crate::graphlet::{canonical_code, sample_connected_graphlet, sample_graphlet_anywhere};
use deepmap_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-vertex graphlet features of one graph, keyed by canonical isomorphism
/// code (before vocabulary interning). Consumes `rng` in the same order as
/// [`vertex_feature_maps`], so the corpus path (one shared stream) and the
/// frozen serving path (one stream per graph) both reproduce their fits.
pub(crate) fn keyed_vertex_features(
    graph: &Graph,
    size: usize,
    samples: usize,
    rng: &mut StdRng,
) -> Vec<Vec<(u64, f32)>> {
    let mut per_vertex = Vec::with_capacity(graph.n_vertices());
    for v in graph.vertices() {
        let mut pairs = Vec::new();
        for _ in 0..samples {
            if let Some(verts) = sample_connected_graphlet(graph, v, size, rng) {
                pairs.push((canonical_code(graph, &verts), 1.0));
            }
        }
        per_vertex.push(pairs);
    }
    per_vertex
}

/// Vertex feature maps: for every vertex, `samples` connected graphlets of
/// `size` vertices rooted at it, classified by isomorphism class.
///
/// Vertices whose component is smaller than `size` get the zero vector
/// (nothing to sample), mirroring the original implementation.
pub fn vertex_feature_maps(
    graphs: &[Graph],
    size: usize,
    samples: usize,
    rng: &mut StdRng,
) -> DatasetFeatureMaps {
    let mut vocab = Vocabulary::new();
    let mut maps = Vec::with_capacity(graphs.len());
    for graph in graphs {
        maps.push(intern_keyed(
            keyed_vertex_features(graph, size, samples, rng),
            &mut vocab,
        ));
    }
    DatasetFeatureMaps {
        maps,
        dim: vocab.len(),
    }
}

/// Vertex feature maps with one RNG stream per graph, each re-seeded with
/// `seed` — exactly the convention of the frozen serving path
/// (`FrozenExtractor::fit`), so the corpus and serving vocabularies now
/// agree for GK too. Independent streams make per-graph sampling a pure
/// function of `(graph, seed)`, so it fans out over the shared
/// `deepmap-par` pool; vocabulary interning stays sequential in graph
/// order. Results are deterministic and independent of the thread count.
pub fn vertex_feature_maps_per_graph(
    graphs: &[Graph],
    size: usize,
    samples: usize,
    seed: u64,
) -> DatasetFeatureMaps {
    let keyed = deepmap_par::par_map_indexed(graphs, |_, g| {
        let mut rng = StdRng::seed_from_u64(seed);
        keyed_vertex_features(g, size, samples, &mut rng)
    });
    let mut vocab = Vocabulary::new();
    let maps = keyed
        .into_iter()
        .map(|k| intern_keyed(k, &mut vocab))
        .collect();
    DatasetFeatureMaps {
        maps,
        dim: vocab.len(),
    }
}

/// Graph-level feature maps by direct sampling (the original GK of
/// Shervashidze et al. 2009): `samples` graphlets per graph from uniformly
/// random roots.
pub fn graph_feature_maps_sampled(
    graphs: &[Graph],
    size: usize,
    samples: usize,
    rng: &mut StdRng,
) -> Vec<SparseVec> {
    let mut vocab = Vocabulary::new();
    graphs
        .iter()
        .map(|graph| {
            let mut vec = SparseVec::new();
            for _ in 0..samples {
                if let Some(verts) = sample_graphlet_anywhere(graph, size, rng) {
                    let code = canonical_code(graph, &verts);
                    vec.add(vocab.intern(code), 1.0);
                }
            }
            vec
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_graph::builder::graph_from_edges;
    use deepmap_graph::generators::{complete_graph, cycle_graph};
    use rand::SeedableRng;

    #[test]
    fn vertex_maps_have_sampled_mass() {
        let g =
            graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)], None).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let maps = vertex_feature_maps(&[g], 3, 10, &mut rng);
        assert_eq!(maps.maps[0].len(), 6);
        for v in &maps.maps[0] {
            assert_eq!(v.total(), 10.0, "every sample lands in some class");
        }
    }

    #[test]
    fn per_graph_streams_deterministic_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(2);
        let graphs = vec![cycle_graph(8, 0, &mut rng), complete_graph(8, 0, &mut rng)];
        deepmap_par::set_threads(4);
        let a = vertex_feature_maps_per_graph(&graphs, 3, 10, 5);
        deepmap_par::set_threads(1);
        let b = vertex_feature_maps_per_graph(&graphs, 3, 10, 5);
        assert_eq!(a.dim, b.dim);
        assert_eq!(a.maps, b.maps, "vocabulary order must not depend on threads");
    }

    #[test]
    fn cycle_vs_clique_distinguished() {
        let mut rng = StdRng::seed_from_u64(2);
        let cyc = cycle_graph(8, 0, &mut rng);
        let cli = complete_graph(8, 0, &mut rng);
        let maps = vertex_feature_maps(&[cyc, cli], 3, 20, &mut rng);
        let sums = maps.sum_per_graph();
        // On a cycle every size-3 graphlet is a path; on a clique, a
        // triangle. The two graph maps must be orthogonal.
        assert_eq!(sums[0].dot(&sums[1]), 0.0);
        assert!(sums[0].total() > 0.0 && sums[1].total() > 0.0);
    }

    #[test]
    fn small_component_gives_zero_vector() {
        let g = graph_from_edges(4, &[(0, 1)], None).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let maps = vertex_feature_maps(&[g], 3, 5, &mut rng);
        for v in &maps.maps[0] {
            assert_eq!(v.nnz(), 0);
        }
        assert_eq!(maps.dim, 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let g =
            graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)], None).unwrap();
        let a = vertex_feature_maps(
            std::slice::from_ref(&g),
            4,
            15,
            &mut StdRng::seed_from_u64(7),
        );
        let b = vertex_feature_maps(&[g], 4, 15, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.maps, b.maps);
    }

    #[test]
    fn graph_level_sampling_counts() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = complete_graph(6, 0, &mut rng);
        let maps = graph_feature_maps_sampled(&[g], 4, 25, &mut rng);
        assert_eq!(maps[0].total(), 25.0);
        assert_eq!(maps[0].nnz(), 1, "K6 has a single size-4 graphlet class");
    }
}
