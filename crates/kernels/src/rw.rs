//! Random-walk graph kernels, including the paper's proposed high-order
//! extension.
//!
//! The paper's Discussion (§6) observes that the classical random-walk
//! kernel counts common label walks on the *first-order* transition
//! structure and therefore "cannot capture the high-order complex
//! interactions between vertices"; it proposes walks on a high-order
//! transition matrix as future work. Both are implemented here:
//!
//! - [`kernel_matrix`] with [`WalkOrder::FirstOrder`]: the classical
//!   k-step label-walk kernel (Gärtner et al. 2003 / Kashima et al. 2003)
//!   computed by dynamic programming on the label-matched direct product —
//!   `count_k(u,v) = Σ_{u'∼u, v'∼v, l(u')=l(v')} count_{k-1}(u',v')` —
//!   with a geometric decay `λ^k` over walk lengths.
//! - [`WalkOrder::NonBacktracking`]: the second-order variant, where the
//!   walk state includes the previous edge and immediate backtracking
//!   (`… → a → b → a → …`) is forbidden. Non-backtracking walks depend on
//!   the *second-order* transition structure, so walks no longer collapse
//!   onto the first-order transition matrix — the concrete "high-order"
//!   walk the paper sketches.

use crate::kernel_matrix::KernelMatrix;
use deepmap_graph::Graph;

/// Which transition structure the walks follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkOrder {
    /// Ordinary walks (first-order Markov transitions).
    FirstOrder,
    /// Non-backtracking walks (second-order transitions; the paper's §6
    /// high-order extension).
    NonBacktracking,
}

/// Random-walk kernel hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct RwConfig {
    /// Maximum walk length `L` (number of edges).
    pub max_length: usize,
    /// Geometric decay `λ` applied per step (`Σ_k λ^k · common_k`).
    pub lambda: f64,
    /// Walk order.
    pub order: WalkOrder,
    /// Threads for Gram assembly.
    pub threads: usize,
}

impl Default for RwConfig {
    fn default() -> Self {
        RwConfig {
            max_length: 4,
            lambda: 0.5,
            order: WalkOrder::FirstOrder,
            threads: 1,
        }
    }
}

/// Number of common label walks, aggregated over lengths `0..=L` with
/// geometric decay — first-order version.
fn pair_kernel_first_order(g1: &Graph, g2: &Graph, config: &RwConfig) -> f64 {
    let (n1, n2) = (g1.n_vertices(), g2.n_vertices());
    if n1 == 0 || n2 == 0 {
        return 0.0;
    }
    // state[u][v] = number of common walks of the current length ending at
    // the label-matched pair (u, v).
    let mut state = vec![0.0f64; n1 * n2];
    for u in 0..n1 {
        for v in 0..n2 {
            if g1.label(u as u32) == g2.label(v as u32) {
                state[u * n2 + v] = 1.0;
            }
        }
    }
    let mut total: f64 = state.iter().sum(); // length-0 walks
    let mut decay = 1.0;
    for _ in 0..config.max_length {
        decay *= config.lambda;
        let mut next = vec![0.0f64; n1 * n2];
        for u in 0..n1 {
            for &up in g1.neighbors(u as u32) {
                for v in 0..n2 {
                    let s = state[u * n2 + v];
                    if s == 0.0 {
                        continue;
                    }
                    for &vp in g2.neighbors(v as u32) {
                        if g1.label(up) == g2.label(vp) {
                            next[up as usize * n2 + vp as usize] += s;
                        }
                    }
                }
            }
        }
        state = next;
        total += decay * state.iter().sum::<f64>();
    }
    total
}

/// Non-backtracking (second-order) version: the DP state is an edge pair
/// `((u_prev → u), (v_prev → v))` and transitions forbid returning along
/// the edge just used.
fn pair_kernel_non_backtracking(g1: &Graph, g2: &Graph, config: &RwConfig) -> f64 {
    let (n1, n2) = (g1.n_vertices(), g2.n_vertices());
    if n1 == 0 || n2 == 0 {
        return 0.0;
    }
    // Directed edge lists.
    let edges1: Vec<(u32, u32)> = g1
        .vertices()
        .flat_map(|u| g1.neighbors(u).iter().map(move |&w| (u, w)))
        .collect();
    let edges2: Vec<(u32, u32)> = g2
        .vertices()
        .flat_map(|v| g2.neighbors(v).iter().map(move |&w| (v, w)))
        .collect();

    // Length 0: matched vertex pairs; length 1: matched edge pairs.
    let mut total = 0.0f64;
    for u in 0..n1 {
        for v in 0..n2 {
            if g1.label(u as u32) == g2.label(v as u32) {
                total += 1.0;
            }
        }
    }
    // state[(e1 index, e2 index)] for matched directed edges (both
    // endpoints' labels agree).
    let mut state: Vec<f64> = Vec::with_capacity(edges1.len() * edges2.len());
    for &(a, b) in &edges1 {
        for &(c, d) in &edges2 {
            let matched = g1.label(a) == g2.label(c) && g1.label(b) == g2.label(d);
            state.push(if matched { 1.0 } else { 0.0 });
        }
    }
    let mut decay = config.lambda;
    total += decay * state.iter().sum::<f64>();

    // Edge adjacency: (a→b) extends to (b→c) with c != a.
    for _ in 1..config.max_length {
        decay *= config.lambda;
        let mut next = vec![0.0f64; state.len()];
        for (i1, &(a, b)) in edges1.iter().enumerate() {
            for (i2, &(c, d)) in edges2.iter().enumerate() {
                let s = state[i1 * edges2.len() + i2];
                if s == 0.0 {
                    continue;
                }
                for (j1, &(b2, e)) in edges1.iter().enumerate() {
                    if b2 != b || e == a {
                        continue; // must continue from b, no backtracking
                    }
                    for (j2, &(d2, f)) in edges2.iter().enumerate() {
                        if d2 != d || f == c {
                            continue;
                        }
                        if g1.label(e) == g2.label(f) {
                            next[j1 * edges2.len() + j2] += s;
                        }
                    }
                }
            }
        }
        state = next;
        total += decay * state.iter().sum::<f64>();
    }
    total
}

/// The cosine-normalised random-walk Gram matrix.
pub fn kernel_matrix(graphs: &[Graph], config: &RwConfig) -> KernelMatrix {
    KernelMatrix::from_pairwise(graphs.len(), config.threads, |i, j| match config.order {
        WalkOrder::FirstOrder => pair_kernel_first_order(&graphs[i], &graphs[j], config),
        WalkOrder::NonBacktracking => pair_kernel_non_backtracking(&graphs[i], &graphs[j], config),
    })
    .normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_graph::builder::graph_from_edges;

    fn path3(labels: [u32; 3]) -> Graph {
        graph_from_edges(3, &[(0, 1), (1, 2)], Some(&labels)).unwrap()
    }

    #[test]
    fn first_order_known_count() {
        // Two identical labeled edges: walks of length 0: 2 matched vertex
        // pairs; length 1: 2 matched directed edge pairs.
        let g = graph_from_edges(2, &[(0, 1)], Some(&[1, 2])).unwrap();
        let config = RwConfig {
            max_length: 1,
            lambda: 1.0,
            ..Default::default()
        };
        let k = pair_kernel_first_order(&g, &g, &config);
        assert_eq!(k, 2.0 + 2.0);
    }

    #[test]
    fn label_mismatch_kills_walks() {
        let a = path3([1, 2, 3]);
        let b = path3([4, 5, 6]);
        let k = pair_kernel_first_order(&a, &b, &RwConfig::default());
        assert_eq!(k, 0.0);
    }

    #[test]
    fn gram_properties_both_orders() {
        let graphs = vec![path3([1, 2, 1]), path3([1, 2, 1]), path3([2, 1, 2])];
        for order in [WalkOrder::FirstOrder, WalkOrder::NonBacktracking] {
            let k = kernel_matrix(
                &graphs,
                &RwConfig {
                    order,
                    ..Default::default()
                },
            );
            assert!(k.asymmetry() < 1e-12, "{order:?}");
            assert!(
                (k.get(0, 1) - 1.0).abs() < 1e-9,
                "identical graphs, {order:?}"
            );
            for i in 0..3 {
                assert!((k.get(i, i) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn non_backtracking_forbids_reversal() {
        // On a single labeled edge, ordinary walks of length 2 exist
        // (0→1→0), non-backtracking ones do not.
        let g = graph_from_edges(2, &[(0, 1)], Some(&[1, 1])).unwrap();
        let config = RwConfig {
            max_length: 2,
            lambda: 1.0,
            ..Default::default()
        };
        let first = pair_kernel_first_order(&g, &g, &config);
        let nb = pair_kernel_non_backtracking(
            &g,
            &g,
            &RwConfig {
                order: WalkOrder::NonBacktracking,
                ..config
            },
        );
        // First order: 4 (len 0) + 4 (len 1) + 4 (len 2 = back-and-forth).
        assert_eq!(first, 12.0);
        // Non-backtracking: no length-2 walks on a single edge.
        assert_eq!(nb, 8.0);
    }

    #[test]
    fn high_order_distinguishes_where_first_order_cannot_discount() {
        // A triangle supports non-backtracking closed walks; a path of the
        // same size does not. The NB kernel separates them more sharply.
        let tri = graph_from_edges(3, &[(0, 1), (1, 2), (0, 2)], Some(&[1, 1, 1])).unwrap();
        let path = path3([1, 1, 1]);
        let config = RwConfig {
            max_length: 3,
            lambda: 0.5,
            order: WalkOrder::NonBacktracking,
            threads: 1,
        };
        let k = kernel_matrix(&[tri.clone(), path.clone()], &config);
        let first = kernel_matrix(
            &[tri, path],
            &RwConfig {
                order: WalkOrder::FirstOrder,
                ..config
            },
        );
        assert!(
            k.get(0, 1) < first.get(0, 1),
            "NB {} should separate more than first-order {}",
            k.get(0, 1),
            first.get(0, 1)
        );
    }

    #[test]
    fn empty_graph_zero() {
        let g0 = graph_from_edges(0, &[], None).unwrap();
        let g1 = path3([1, 1, 1]);
        let k = kernel_matrix(&[g0, g1], &RwConfig::default());
        assert_eq!(k.get(0, 1), 0.0);
    }
}
