//! Graphlet machinery: canonical isomorphism classes and random sampling.
//!
//! A graphlet (paper Fig. 1) is a connected induced subgraph of size
//! `k ∈ {3, 4, 5}` considered up to isomorphism. Sizes this small admit
//! brute-force canonicalisation: the adjacency of the induced subgraph is
//! packed into the `k(k-1)/2` upper-triangle bits and the canonical code is
//! the minimum over all `k!` vertex permutations (at most 120). Exhaustive
//! enumeration of graphlets is exponential, so — exactly as in Shervashidze
//! et al. 2009, which the paper follows — graphlets are *sampled*.

use deepmap_graph::{FxHashSet, Graph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::OnceLock;

/// Maximum supported graphlet size.
pub const MAX_GRAPHLET_SIZE: usize = 5;

fn permutations(k: usize) -> &'static [Vec<u8>] {
    static TABLES: OnceLock<Vec<Vec<Vec<u8>>>> = OnceLock::new();
    let tables = TABLES.get_or_init(|| {
        (0..=MAX_GRAPHLET_SIZE)
            .map(|k| {
                let mut perms = Vec::new();
                let mut items: Vec<u8> = (0..k as u8).collect();
                heap_permutations(&mut items, k, &mut perms);
                perms
            })
            .collect()
    });
    &tables[k]
}

fn heap_permutations(items: &mut Vec<u8>, k: usize, out: &mut Vec<Vec<u8>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permutations(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

#[inline]
fn triangle_bit(i: usize, j: usize, k: usize) -> u32 {
    // Upper-triangle position of (i, j), i < j, in a k-vertex graph.
    debug_assert!(i < j && j < k);
    (i * (2 * k - i - 1) / 2 + (j - i - 1)) as u32
}

/// Canonical code of the subgraph of `graph` induced by `vertices`
/// (`2 <= |vertices| <= 5`). Equal codes ⇔ isomorphic induced subgraphs of
/// equal size. Labels are ignored — the graphlet kernel is defined on
/// unlabeled connectivity patterns (paper Fig. 1).
///
/// The code packs the size in the high bits so graphlets of different sizes
/// never collide.
///
/// # Panics
/// Panics when `|vertices|` is outside `2..=5`.
pub fn canonical_code(graph: &Graph, vertices: &[u32]) -> u64 {
    let k = vertices.len();
    assert!(
        (2..=MAX_GRAPHLET_SIZE).contains(&k),
        "graphlet size {k} outside supported range 2..=5"
    );
    // Local adjacency matrix as bitmask over unordered pairs.
    let mut adj = [[false; MAX_GRAPHLET_SIZE]; MAX_GRAPHLET_SIZE];
    for i in 0..k {
        for j in (i + 1)..k {
            if graph.has_edge(vertices[i], vertices[j]) {
                adj[i][j] = true;
                adj[j][i] = true;
            }
        }
    }
    let mut best = u64::MAX;
    for perm in permutations(k) {
        let mut bits: u64 = 0;
        for i in 0..k {
            for j in (i + 1)..k {
                if adj[perm[i] as usize][perm[j] as usize] {
                    bits |= 1 << triangle_bit(i, j, k);
                }
            }
        }
        best = best.min(bits);
    }
    ((k as u64) << 16) | best
}

/// Samples one connected induced subgraph of `size` vertices containing
/// `start`, by growing a frontier: repeatedly add a uniformly random
/// neighbour of the current set. Returns `None` when the component of
/// `start` has fewer than `size` vertices.
pub fn sample_connected_graphlet(
    graph: &Graph,
    start: u32,
    size: usize,
    rng: &mut StdRng,
) -> Option<Vec<u32>> {
    assert!((2..=MAX_GRAPHLET_SIZE).contains(&size));
    let mut chosen = Vec::with_capacity(size);
    let mut in_set: FxHashSet<u32> = FxHashSet::default();
    let mut frontier: Vec<u32> = Vec::new();
    chosen.push(start);
    in_set.insert(start);
    frontier.extend(graph.neighbors(start).iter().copied());
    while chosen.len() < size {
        frontier.retain(|v| !in_set.contains(v));
        if frontier.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..frontier.len());
        let v = frontier.swap_remove(idx);
        in_set.insert(v);
        chosen.push(v);
        frontier.extend(
            graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|w| !in_set.contains(w)),
        );
    }
    Some(chosen)
}

/// Samples a connected graphlet rooted at a uniformly random vertex
/// (graph-level sampling, Shervashidze et al. 2009). `None` when the graph
/// has no component of `size` vertices reachable from the drawn root.
pub fn sample_graphlet_anywhere(graph: &Graph, size: usize, rng: &mut StdRng) -> Option<Vec<u32>> {
    if graph.n_vertices() == 0 {
        return None;
    }
    let roots: Vec<u32> = graph.vertices().collect();
    let &start = roots.choose(rng).expect("non-empty");
    sample_connected_graphlet(graph, start, size, rng)
}

/// Enumerates the number of distinct connected graphlet isomorphism classes
/// of the given size by brute force over all `2^(k(k-1)/2)` graphs. Used by
/// tests and documentation; the known values are 2 (k=3), 6 (k=4), 21 (k=5).
pub fn count_connected_classes(k: usize) -> usize {
    assert!((2..=MAX_GRAPHLET_SIZE).contains(&k));
    let pairs = k * (k - 1) / 2;
    let mut classes: FxHashSet<u64> = FxHashSet::default();
    for bits in 0u64..(1 << pairs) {
        // Build the graph.
        let mut builder = deepmap_graph::GraphBuilder::new(k);
        let mut bit = 0;
        for i in 0..k {
            for j in (i + 1)..k {
                if bits >> bit & 1 == 1 {
                    builder.add_edge_unchecked(i as u32, j as u32);
                }
                bit += 1;
            }
        }
        let g = builder.build().expect("valid");
        if deepmap_graph::components::is_connected(&g) {
            let verts: Vec<u32> = (0..k as u32).collect();
            classes.insert(canonical_code(&g, &verts));
        }
    }
    classes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_graph::builder::graph_from_edges;
    use rand::SeedableRng;

    #[test]
    fn triangle_bits_are_distinct() {
        for k in 2..=5usize {
            let mut seen = FxHashSet::default();
            for i in 0..k {
                for j in (i + 1)..k {
                    assert!(seen.insert(triangle_bit(i, j, k)), "collision at ({i},{j})");
                }
            }
            assert_eq!(seen.len(), k * (k - 1) / 2);
        }
    }

    #[test]
    fn isomorphic_triangles_share_code() {
        // Path 0-1-2 in two different graphs / vertex orders.
        let g1 = graph_from_edges(3, &[(0, 1), (1, 2)], None).unwrap();
        let g2 = graph_from_edges(4, &[(3, 1), (1, 0)], None).unwrap();
        let c1 = canonical_code(&g1, &[0, 1, 2]);
        let c2 = canonical_code(&g2, &[0, 1, 3]);
        let c3 = canonical_code(&g1, &[2, 0, 1]);
        assert_eq!(c1, c2);
        assert_eq!(c1, c3);
    }

    #[test]
    fn triangle_differs_from_path() {
        let tri = graph_from_edges(3, &[(0, 1), (1, 2), (0, 2)], None).unwrap();
        let path = graph_from_edges(3, &[(0, 1), (1, 2)], None).unwrap();
        assert_ne!(
            canonical_code(&tri, &[0, 1, 2]),
            canonical_code(&path, &[0, 1, 2])
        );
    }

    #[test]
    fn sizes_never_collide() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)], None).unwrap();
        let c3 = canonical_code(&g, &[0, 1, 2]);
        let c4 = canonical_code(&g, &[0, 1, 2, 3]);
        assert_ne!(c3, c4);
    }

    #[test]
    fn known_connected_class_counts() {
        assert_eq!(count_connected_classes(2), 1);
        assert_eq!(count_connected_classes(3), 2);
        assert_eq!(count_connected_classes(4), 6);
        assert_eq!(count_connected_classes(5), 21);
    }

    #[test]
    fn sampled_graphlets_are_connected_and_contain_start() {
        let g = graph_from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (0, 7),
                (1, 5),
            ],
            None,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let verts =
                sample_connected_graphlet(&g, 1, 4, &mut rng).expect("component large enough");
            assert_eq!(verts.len(), 4);
            assert!(verts.contains(&1));
            let sub = g.induced_subgraph(&verts);
            assert!(deepmap_graph::components::is_connected(&sub));
        }
    }

    #[test]
    fn sampling_fails_on_small_component() {
        let g = graph_from_edges(5, &[(0, 1)], None).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(sample_connected_graphlet(&g, 0, 3, &mut rng).is_none());
        assert!(sample_connected_graphlet(&g, 4, 2, &mut rng).is_none());
    }

    #[test]
    fn anywhere_sampling_on_empty_graph() {
        let g = graph_from_edges(0, &[], None).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sample_graphlet_anywhere(&g, 3, &mut rng).is_none());
    }

    #[test]
    fn complete_graph_single_class() {
        // Every induced size-3 subgraph of K5 is a triangle.
        let mut rng = StdRng::seed_from_u64(4);
        let g = deepmap_graph::generators::complete_graph(5, 0, &mut rng);
        let mut codes = FxHashSet::default();
        for _ in 0..30 {
            let verts = sample_graphlet_anywhere(&g, 3, &mut rng).unwrap();
            codes.insert(canonical_code(&g, &verts));
        }
        assert_eq!(codes.len(), 1);
    }
}
