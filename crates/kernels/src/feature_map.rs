//! Sparse feature vectors, vocabularies, and dataset-level feature maps.
//!
//! A substructure (graphlet class, shortest-path triplet, WL label) is
//! identified by an opaque `u64` key. A [`Vocabulary`] interns keys into
//! dense column indices shared across the whole dataset, a [`SparseVec`]
//! stores one vertex's (or graph's) counts over those columns, and
//! [`DatasetFeatureMaps`] bundles the per-graph, per-vertex vectors with the
//! vocabulary.

use deepmap_graph::FxHashMap;

/// Interns opaque `u64` substructure keys into dense column indices.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    map: FxHashMap<u64, u32>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Index for `key`, allocating the next free column on first sight.
    pub fn intern(&mut self, key: u64) -> u32 {
        let next = self.map.len() as u32;
        *self.map.entry(key).or_insert(next)
    }

    /// Index for `key` if it has been interned.
    pub fn get(&self, key: u64) -> Option<u32> {
        self.map.get(&key).copied()
    }

    /// Number of interned keys (the feature dimension `m`).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All `(key, column)` pairs, sorted by key. This is the deterministic
    /// export the frozen-vocabulary serving path serialises.
    pub fn to_pairs(&self) -> Vec<(u64, u32)> {
        let mut pairs: Vec<(u64, u32)> = self.map.iter().map(|(&k, &c)| (k, c)).collect();
        pairs.sort_unstable_by_key(|&(k, _)| k);
        pairs
    }
}

/// Interns keyed per-vertex features into `vocab` in iteration order,
/// producing one [`SparseVec`] per vertex. Shared by the corpus-fitting and
/// frozen-extractor paths so both assign identical columns.
pub(crate) fn intern_keyed(keyed: Vec<Vec<(u64, f32)>>, vocab: &mut Vocabulary) -> Vec<SparseVec> {
    keyed
        .into_iter()
        .map(|pairs| {
            let mut vec = SparseVec::new();
            for (key, value) in pairs {
                vec.add(vocab.intern(key), value);
            }
            vec
        })
        .collect()
}

/// A sparse non-negative feature vector: sorted `(column, value)` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    entries: Vec<(u32, f32)>,
}

impl SparseVec {
    /// The zero vector.
    pub fn new() -> Self {
        SparseVec::default()
    }

    /// Builds from unsorted `(column, value)` pairs, merging duplicates.
    pub fn from_pairs(mut pairs: Vec<(u32, f32)>) -> Self {
        pairs.sort_unstable_by_key(|&(c, _)| c);
        let mut entries: Vec<(u32, f32)> = Vec::with_capacity(pairs.len());
        for (c, v) in pairs {
            match entries.last_mut() {
                Some(last) if last.0 == c => last.1 += v,
                _ => entries.push((c, v)),
            }
        }
        entries.retain(|&(_, v)| v != 0.0);
        SparseVec { entries }
    }

    /// Adds `value` to column `col`.
    pub fn add(&mut self, col: u32, value: f32) {
        match self.entries.binary_search_by_key(&col, |&(c, _)| c) {
            Ok(i) => self.entries[i].1 += value,
            Err(i) => self.entries.insert(i, (col, value)),
        }
    }

    /// Accumulates `other` into `self`.
    pub fn add_assign(&mut self, other: &SparseVec) {
        if other.entries.is_empty() {
            return;
        }
        // Merge two sorted lists.
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => {
                    merged.push(self.entries[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.entries[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((self.entries[i].0, self.entries[i].1 + other.entries[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.entries[i..]);
        merged.extend_from_slice(&other.entries[j..]);
        self.entries = merged;
    }

    /// Dot product with another sparse vector.
    pub fn dot(&self, other: &SparseVec) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0f64;
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.entries[i].1 as f64 * other.entries[j].1 as f64;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f64 {
        self.entries
            .iter()
            .map(|&(_, v)| (v as f64) * (v as f64))
            .sum()
    }

    /// Sum of values (total substructure count).
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v as f64).sum()
    }

    /// Number of non-zero columns.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Value at column `col` (0 when absent).
    pub fn get(&self, col: u32) -> f32 {
        self.entries
            .binary_search_by_key(&col, |&(c, _)| c)
            .map(|i| self.entries[i].1)
            .unwrap_or(0.0)
    }

    /// Sorted `(column, value)` pairs.
    pub fn entries(&self) -> &[(u32, f32)] {
        &self.entries
    }

    /// Writes the vector densely into `out[0..dim]` (zero-filled first).
    ///
    /// Columns beyond `out.len()` are ignored — this is how top-K truncated
    /// dense tensors drop rare features.
    pub fn write_dense(&self, out: &mut [f32]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        for &(c, v) in &self.entries {
            if let Some(slot) = out.get_mut(c as usize) {
                *slot = v;
            }
        }
    }

    /// Remaps columns through `mapping` (`None` drops the column). Used by
    /// top-K truncation.
    pub fn remap(&self, mapping: &FxHashMap<u32, u32>) -> SparseVec {
        let pairs: Vec<(u32, f32)> = self
            .entries
            .iter()
            .filter_map(|&(c, v)| mapping.get(&c).map(|&nc| (nc, v)))
            .collect();
        SparseVec::from_pairs(pairs)
    }
}

/// Per-vertex feature maps for a dataset of graphs, sharing one vocabulary.
#[derive(Debug, Clone)]
pub struct DatasetFeatureMaps {
    /// `maps[g][v]` is the feature map of vertex `v` of graph `g`.
    pub maps: Vec<Vec<SparseVec>>,
    /// Feature dimension `m` (vocabulary size).
    pub dim: usize,
}

impl DatasetFeatureMaps {
    /// Graph-level feature maps: `φ(G) = Σᵥ φ(v)` (paper Eq. 7).
    pub fn sum_per_graph(&self) -> Vec<SparseVec> {
        self.maps
            .iter()
            .map(|vertices| {
                let mut acc = SparseVec::new();
                for v in vertices {
                    acc.add_assign(v);
                }
                acc
            })
            .collect()
    }

    /// Restricts the vocabulary to the `k` globally most frequent columns
    /// (ties broken by column index for determinism), renumbering columns
    /// densely.
    ///
    /// The paper's Discussion (§6) notes vertex feature maps can be very
    /// high-dimensional, which makes the CNN slow (Table 5); truncation is
    /// the practical mitigation and is ablated in the benches.
    pub fn truncate_top_k(&self, k: usize) -> DatasetFeatureMaps {
        match self.top_k_mapping(k) {
            None => self.clone(),
            Some(mapping) => self.apply_mapping(&mapping, k),
        }
    }

    /// The column mapping `old → new` that [`truncate_top_k`] would apply,
    /// or `None` when `dim <= k` (no truncation needed). Exposed so the
    /// frozen-vocabulary serving path can apply the identical mapping to its
    /// key table.
    ///
    /// [`truncate_top_k`]: DatasetFeatureMaps::truncate_top_k
    pub fn top_k_mapping(&self, k: usize) -> Option<FxHashMap<u32, u32>> {
        if self.dim <= k {
            return None;
        }
        let mut totals: Vec<f64> = vec![0.0; self.dim];
        for graph in &self.maps {
            for vec in graph {
                for &(c, v) in vec.entries() {
                    totals[c as usize] += v as f64;
                }
            }
        }
        let mut order: Vec<u32> = (0..self.dim as u32).collect();
        order.sort_by(|&a, &b| {
            totals[b as usize]
                .partial_cmp(&totals[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(&b))
        });
        let mut mapping: FxHashMap<u32, u32> = FxHashMap::default();
        for (new, &old) in order.iter().take(k).enumerate() {
            mapping.insert(old, new as u32);
        }
        Some(mapping)
    }

    /// Remaps every vector through `mapping` (unmapped columns are dropped)
    /// and renumbers the dimension to `new_dim`.
    pub fn apply_mapping(
        &self,
        mapping: &FxHashMap<u32, u32>,
        new_dim: usize,
    ) -> DatasetFeatureMaps {
        DatasetFeatureMaps {
            maps: self
                .maps
                .iter()
                .map(|g| g.iter().map(|v| v.remap(mapping)).collect())
                .collect(),
            dim: new_dim,
        }
    }

    /// Number of graphs.
    pub fn n_graphs(&self) -> usize {
        self.maps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_interns_stably() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern(100), 0);
        assert_eq!(v.intern(200), 1);
        assert_eq!(v.intern(100), 0);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(200), Some(1));
        assert_eq!(v.get(300), None);
    }

    #[test]
    fn from_pairs_merges_and_sorts() {
        let v = SparseVec::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 4.0), (2, 0.0)]);
        assert_eq!(v.entries(), &[(1, 2.0), (3, 5.0)]);
    }

    #[test]
    fn add_and_get() {
        let mut v = SparseVec::new();
        v.add(5, 1.0);
        v.add(2, 3.0);
        v.add(5, 1.0);
        assert_eq!(v.get(5), 2.0);
        assert_eq!(v.get(2), 3.0);
        assert_eq!(v.get(9), 0.0);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn dot_product() {
        let a = SparseVec::from_pairs(vec![(0, 1.0), (2, 2.0), (5, 3.0)]);
        let b = SparseVec::from_pairs(vec![(2, 4.0), (5, 1.0), (7, 9.0)]);
        assert_eq!(a.dot(&b), 8.0 + 3.0);
        assert_eq!(a.dot(&SparseVec::new()), 0.0);
        assert_eq!(a.norm_sq(), 1.0 + 4.0 + 9.0);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = SparseVec::from_pairs(vec![(1, 1.0), (3, 1.0)]);
        let b = SparseVec::from_pairs(vec![(0, 5.0), (3, 2.0)]);
        a.add_assign(&b);
        assert_eq!(a.entries(), &[(0, 5.0), (1, 1.0), (3, 3.0)]);
    }

    #[test]
    fn write_dense_truncates() {
        let v = SparseVec::from_pairs(vec![(0, 1.0), (4, 2.0)]);
        let mut out = vec![9.0f32; 3];
        v.write_dense(&mut out);
        assert_eq!(out, vec![1.0, 0.0, 0.0]);
    }

    fn toy_maps() -> DatasetFeatureMaps {
        // Graph 0: two vertices; graph 1: one vertex.
        DatasetFeatureMaps {
            maps: vec![
                vec![
                    SparseVec::from_pairs(vec![(0, 1.0), (1, 1.0)]),
                    SparseVec::from_pairs(vec![(1, 2.0), (3, 1.0)]),
                ],
                vec![SparseVec::from_pairs(vec![(2, 5.0)])],
            ],
            dim: 4,
        }
    }

    #[test]
    fn sum_per_graph_is_eq7() {
        let maps = toy_maps();
        let sums = maps.sum_per_graph();
        assert_eq!(sums[0].entries(), &[(0, 1.0), (1, 3.0), (3, 1.0)]);
        assert_eq!(sums[1].entries(), &[(2, 5.0)]);
    }

    #[test]
    fn truncate_keeps_most_frequent() {
        let maps = toy_maps();
        // totals: col0=1, col1=3, col2=5, col3=1 → top-2 is {2, 1}.
        let t = maps.truncate_top_k(2);
        assert_eq!(t.dim, 2);
        // col2 → 0, col1 → 1.
        assert_eq!(t.maps[1][0].entries(), &[(0, 5.0)]);
        assert_eq!(t.maps[0][0].entries(), &[(1, 1.0)]);
        // No-op when k >= dim.
        let same = maps.truncate_top_k(10);
        assert_eq!(same.dim, 4);
    }

    #[test]
    fn remap_drops_unmapped() {
        let v = SparseVec::from_pairs(vec![(0, 1.0), (1, 2.0)]);
        let mut mapping = FxHashMap::default();
        mapping.insert(1u32, 0u32);
        assert_eq!(v.remap(&mapping).entries(), &[(0, 2.0)]);
    }
}
