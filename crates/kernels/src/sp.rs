//! Shortest-path kernel (SP) feature maps.
//!
//! A shortest path between `s` and `t` is represented by the triplet
//! `(l(s), l(t), len)` (paper §3, Eq. 3); because the graphs are undirected
//! we canonicalise the label pair as `(min, max)`. The graph feature map
//! counts triplets over all vertex pairs; the vertex feature map of `v`
//! counts the triplets of shortest paths *with `v` as an endpoint*
//! (Definition 3's "substructures containing v", using the endpoint
//! convention of the reference implementation). Each unordered pair then
//! appears in exactly two vertex maps, so `Σᵥ φ(v)` is the graph map scaled
//! by 2 — the constant factor is irrelevant after kernel normalisation.

use crate::feature_map::{intern_keyed, DatasetFeatureMaps, SparseVec, Vocabulary};
use deepmap_graph::bfs::UNREACHABLE;
use deepmap_graph::shortest_path::apsp_bfs;
use deepmap_graph::Graph;

/// Packs a `(min label, max label, length)` triplet into a vocabulary key.
///
/// Labels are masked to 24 bits and lengths to 16 — far beyond anything the
/// benchmarks produce (labels ≤ hundreds, diameters ≤ dozens).
fn triplet_key(l1: u32, l2: u32, len: u32) -> u64 {
    let (a, b) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
    ((a as u64 & 0xFF_FFFF) << 40) | ((b as u64 & 0xFF_FFFF) << 16) | (len as u64 & 0xFFFF)
}

/// Per-vertex shortest-path features of one graph, keyed by packed triplet
/// (before vocabulary interning). Iteration order matches
/// [`vertex_feature_maps`] so interning in order reproduces its columns;
/// the frozen serving path maps the same keys through a fitted vocabulary.
pub(crate) fn keyed_vertex_features(graph: &Graph) -> Vec<Vec<(u64, f32)>> {
    let dist = apsp_bfs(graph);
    let n = graph.n_vertices();
    let mut per_vertex = Vec::with_capacity(n);
    for v in 0..n {
        let mut pairs = Vec::new();
        let row = dist.row(v);
        for (u, &d) in row.iter().enumerate() {
            if u == v || d == UNREACHABLE || d == 0 {
                continue;
            }
            let key = triplet_key(graph.label(v as u32), graph.label(u as u32), d);
            pairs.push((key, 1.0));
        }
        per_vertex.push(pairs);
    }
    per_vertex
}

/// Vertex feature maps: for each vertex, the multiset of shortest-path
/// triplets with that vertex as an endpoint.
///
/// The per-graph APSP (the expensive part) fans out over the shared
/// `deepmap-par` pool; vocabulary interning stays sequential in graph
/// order, so column assignment — and hence the result — is independent of
/// the thread count.
pub fn vertex_feature_maps(graphs: &[Graph]) -> DatasetFeatureMaps {
    let keyed = deepmap_par::par_map_indexed(graphs, |_, g| keyed_vertex_features(g));
    let mut vocab = Vocabulary::new();
    let maps = keyed
        .into_iter()
        .map(|k| intern_keyed(k, &mut vocab))
        .collect();
    DatasetFeatureMaps {
        maps,
        dim: vocab.len(),
    }
}

/// Graph-level feature maps: triplet counts over unordered vertex pairs
/// (the classical SP kernel of Borgwardt & Kriegel 2005).
#[allow(clippy::needless_range_loop)] // t indexes both the row and labels
pub fn graph_feature_maps(graphs: &[Graph]) -> Vec<SparseVec> {
    let mut vocab = Vocabulary::new();
    graphs
        .iter()
        .map(|graph| {
            let dist = apsp_bfs(graph);
            let n = graph.n_vertices();
            let mut vec = SparseVec::new();
            for s in 0..n {
                let row = dist.row(s);
                for t in (s + 1)..n {
                    let d = row[t];
                    if d == UNREACHABLE || d == 0 {
                        continue;
                    }
                    let key = triplet_key(graph.label(s as u32), graph.label(t as u32), d);
                    vec.add(vocab.intern(key), 1.0);
                }
            }
            vec
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_graph::builder::graph_from_edges;

    /// Labeled path: labels 1-2-3.
    fn labeled_path() -> Graph {
        graph_from_edges(3, &[(0, 1), (1, 2)], Some(&[1, 2, 3])).unwrap()
    }

    #[test]
    fn triplet_key_symmetric_in_labels() {
        assert_eq!(triplet_key(3, 7, 2), triplet_key(7, 3, 2));
        assert_ne!(triplet_key(3, 7, 2), triplet_key(3, 7, 3));
        assert_ne!(triplet_key(3, 7, 2), triplet_key(3, 8, 2));
    }

    #[test]
    fn graph_map_counts_each_pair_once() {
        let maps = graph_feature_maps(&[labeled_path()]);
        // Pairs: (1,2,d1), (2,3,d1), (1,3,d2) — three distinct triplets.
        assert_eq!(maps[0].nnz(), 3);
        assert_eq!(maps[0].total(), 3.0);
    }

    #[test]
    fn vertex_maps_sum_to_twice_graph_map() {
        let g = labeled_path();
        let vmaps = vertex_feature_maps(std::slice::from_ref(&g));
        let summed = vmaps.sum_per_graph();
        assert_eq!(summed[0].total(), 6.0, "each pair counted from both ends");
        // Same support as the graph-level map (vocabularies are built in
        // the same discovery order here because both walk v ascending).
        let gmaps = graph_feature_maps(&[g]);
        assert_eq!(summed[0].nnz(), gmaps[0].nnz());
    }

    #[test]
    fn middle_vertex_sees_short_paths_only() {
        let vmaps = vertex_feature_maps(&[labeled_path()]);
        // Vertex 1 (label 2) has two distance-1 paths.
        let v1 = &vmaps.maps[0][1];
        assert_eq!(v1.total(), 2.0);
        // Vertex 0 has one distance-1 and one distance-2 path.
        let v0 = &vmaps.maps[0][0];
        assert_eq!(v0.total(), 2.0);
        assert_eq!(v0.nnz(), 2);
    }

    #[test]
    fn disconnected_pairs_ignored() {
        let g = graph_from_edges(4, &[(0, 1)], Some(&[1, 1, 1, 1])).unwrap();
        let gmaps = graph_feature_maps(std::slice::from_ref(&g));
        assert_eq!(gmaps[0].total(), 1.0);
        let vmaps = vertex_feature_maps(&[g]);
        assert_eq!(vmaps.maps[0][2].nnz(), 0);
    }

    #[test]
    fn shared_vocabulary_across_graphs() {
        let g1 = labeled_path();
        let g2 = graph_from_edges(2, &[(0, 1)], Some(&[1, 2])).unwrap();
        let vmaps = vertex_feature_maps(&[g1, g2]);
        // The (1,2,1) triplet column must be the same in both graphs.
        let a = &vmaps.maps[0][0]; // vertex with label 1 in g1
        let b = &vmaps.maps[1][0]; // vertex with label 1 in g2
        assert!(a.dot(b) > 0.0, "shared (1,2,1) feature should overlap");
    }

    #[test]
    fn empty_graph_ok() {
        let g = graph_from_edges(0, &[], None).unwrap();
        let maps = vertex_feature_maps(&[g]);
        assert_eq!(maps.maps[0].len(), 0);
        assert_eq!(maps.dim, 0);
    }
}
