//! Deep Graph Kernels (DGK, Yanardag & Vishwanathan 2015), WL variant.
//!
//! DGK addresses diagonal dominance by learning latent representations for
//! substructures with language-model techniques and replacing the linear
//! kernel `K = Φ Φᵀ` with `K = Φ M Φᵀ`, where `M` is the similarity matrix
//! of the learned substructure embeddings.
//!
//! Our corpus construction follows the paper's WL variant: a WL label's
//! *context* consists of (a) the labels of neighbouring vertices at the same
//! iteration and (b) the same vertex's labels at adjacent iterations.
//! Embeddings are trained with skip-gram negative sampling (SGNS); with
//! `M = E Eᵀ` the kernel factorises as `K(G₁,G₂) = ⟨ψ(G₁), ψ(G₂)⟩` for the
//! embedded graph representation `ψ(G) = Σ_label count(label)·E[label]`, so
//! the Gram matrix never needs the dense `M`.

use crate::kernel_matrix::KernelMatrix;
use crate::wl::refine;
use deepmap_graph::Graph;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Hyper-parameters of the DGK baseline.
#[derive(Debug, Clone, Copy)]
pub struct DgkConfig {
    /// WL iterations used to produce the substructure corpus.
    pub wl_iterations: usize,
    /// Embedding dimensionality.
    pub embedding_dim: usize,
    /// SGNS epochs over the corpus.
    pub epochs: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// RNG seed for initialisation and negative sampling.
    pub seed: u64,
}

impl Default for DgkConfig {
    fn default() -> Self {
        DgkConfig {
            wl_iterations: 3,
            embedding_dim: 16,
            epochs: 3,
            negatives: 4,
            learning_rate: 0.05,
            seed: 0,
        }
    }
}

/// Global id for (iteration, label) pairs, so labels of different
/// iterations occupy disjoint embedding rows.
fn word_id(iteration: usize, label: u32, offsets: &[usize]) -> usize {
    offsets[iteration] + label as usize
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Trains SGNS embeddings over the WL-label corpus and returns the
/// cosine-normalised DGK Gram matrix.
pub fn kernel_matrix(graphs: &[Graph], config: &DgkConfig) -> KernelMatrix {
    let refinement = refine(graphs, config.wl_iterations);
    let n_iters = refinement.labels.len();

    // Row offsets per iteration into the embedding table.
    let mut offsets = Vec::with_capacity(n_iters);
    let mut vocab_size = 0usize;
    for it in 0..n_iters {
        offsets.push(vocab_size);
        vocab_size += refinement.alphabet_sizes[it];
    }

    let dim = config.embedding_dim;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let scale = 0.5 / dim as f32;
    let mut embed: Vec<f32> = (0..vocab_size * dim)
        .map(|_| rng.gen_range(-scale..=scale))
        .collect();
    let mut context_embed: Vec<f32> = vec![0.0; vocab_size * dim];

    // (target, context) positive pairs.
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for (gi, graph) in graphs.iter().enumerate() {
        for it in 0..n_iters {
            let labels = &refinement.labels[it][gi];
            for v in graph.vertices() {
                let target = word_id(it, labels[v as usize], &offsets) as u32;
                for &u in graph.neighbors(v) {
                    pairs.push((target, word_id(it, labels[u as usize], &offsets) as u32));
                }
                if it + 1 < n_iters {
                    let next = &refinement.labels[it + 1][gi];
                    pairs.push((target, word_id(it + 1, next[v as usize], &offsets) as u32));
                }
                if it > 0 {
                    let prev = &refinement.labels[it - 1][gi];
                    pairs.push((target, word_id(it - 1, prev[v as usize], &offsets) as u32));
                }
            }
        }
    }

    // SGNS training.
    if vocab_size > 1 {
        for _ in 0..config.epochs {
            for &(t, c) in &pairs {
                let (t, c) = (t as usize, c as usize);
                // Positive update.
                sgns_update(
                    &mut embed,
                    &mut context_embed,
                    t,
                    c,
                    1.0,
                    dim,
                    config.learning_rate,
                );
                // Negatives.
                for _ in 0..config.negatives {
                    let neg = rng.gen_range(0..vocab_size);
                    if neg != c {
                        sgns_update(
                            &mut embed,
                            &mut context_embed,
                            t,
                            neg,
                            0.0,
                            dim,
                            config.learning_rate,
                        );
                    }
                }
            }
        }
    }

    // Embedded graph representations ψ(G) = Σ counts · embedding.
    let psi: Vec<Vec<f32>> = graphs
        .iter()
        .enumerate()
        .map(|(gi, graph)| {
            let mut acc = vec![0.0f32; dim];
            for it in 0..n_iters {
                let labels = &refinement.labels[it][gi];
                for v in graph.vertices() {
                    let w = word_id(it, labels[v as usize], &offsets);
                    for (a, &e) in acc.iter_mut().zip(&embed[w * dim..(w + 1) * dim]) {
                        *a += e;
                    }
                }
            }
            acc
        })
        .collect();

    let mut k = KernelMatrix::zeros(graphs.len());
    for i in 0..graphs.len() {
        for j in i..graphs.len() {
            let dot: f64 = psi[i]
                .iter()
                .zip(&psi[j])
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum();
            k.set_sym(i, j, dot);
        }
    }
    k.normalized()
}

#[inline]
fn sgns_update(
    embed: &mut [f32],
    context: &mut [f32],
    t: usize,
    c: usize,
    label: f32,
    dim: usize,
    lr: f32,
) {
    let mut dot = 0.0f32;
    for i in 0..dim {
        dot += embed[t * dim + i] * context[c * dim + i];
    }
    let g = (sigmoid(dot) - label) * lr;
    for i in 0..dim {
        let e = embed[t * dim + i];
        let x = context[c * dim + i];
        embed[t * dim + i] -= g * x;
        context[c * dim + i] -= g * e;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_graph::builder::graph_from_edges;
    use deepmap_graph::generators::{complete_graph, cycle_graph};

    fn small_dataset() -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(1);
        vec![
            cycle_graph(6, 0, &mut rng),
            cycle_graph(7, 0, &mut rng),
            complete_graph(6, 0, &mut rng),
            complete_graph(7, 0, &mut rng),
        ]
    }

    #[test]
    fn gram_is_symmetric_unit_diagonal() {
        let k = kernel_matrix(&small_dataset(), &DgkConfig::default());
        assert_eq!(k.n(), 4);
        assert!(k.asymmetry() < 1e-12);
        for i in 0..4 {
            assert!((k.get(i, i) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn similar_structures_more_similar() {
        let k = kernel_matrix(&small_dataset(), &DgkConfig::default());
        // cycle-cycle similarity should exceed cycle-clique.
        assert!(
            k.get(0, 1) > k.get(0, 2),
            "cycle/cycle {} vs cycle/clique {}",
            k.get(0, 1),
            k.get(0, 2)
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = kernel_matrix(&small_dataset(), &DgkConfig::default());
        let b = kernel_matrix(&small_dataset(), &DgkConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn labeled_graphs_work() {
        let g1 = graph_from_edges(3, &[(0, 1), (1, 2)], Some(&[1, 2, 1])).unwrap();
        let g2 = graph_from_edges(3, &[(0, 1), (1, 2)], Some(&[1, 2, 1])).unwrap();
        let k = kernel_matrix(&[g1, g2], &DgkConfig::default());
        assert!(
            (k.get(0, 1) - 1.0).abs() < 1e-6,
            "identical graphs: {}",
            k.get(0, 1)
        );
    }
}
