//! Graph kernels and vertex feature maps for the DeepMap reproduction.
//!
//! The paper builds DeepMap on the feature spaces of three classical
//! R-convolution graph kernels and compares against three more baselines:
//!
//! - [`gk`] — the graphlet kernel (Shervashidze et al. 2009): counts of
//!   connected size-`k` induced-subgraph isomorphism classes, estimated by
//!   random sampling.
//! - [`sp`] — the shortest-path kernel (Borgwardt & Kriegel 2005): counts of
//!   `(source label, sink label, length)` triplets over all shortest paths.
//! - [`wl`] — the Weisfeiler–Lehman subtree kernel (Shervashidze et al.
//!   2011): counts of compressed labels over `h` refinement iterations.
//! - [`dgk`] — Deep Graph Kernels (Yanardag & Vishwanathan 2015): WL
//!   substructure embeddings learned with skip-gram negative sampling,
//!   composed into `K = Φ M Φᵀ`.
//! - [`retgk`] — RetGK (Zhang et al. 2018): return-probability features of
//!   random walks, compared with a Gaussian mean-map kernel.
//! - [`gntk`] — the Graph Neural Tangent Kernel (Du et al. 2019): the exact
//!   infinite-width GNN kernel computed by dynamic programming.
//! - [`rw`] — random-walk kernels: the classical first-order label-walk
//!   kernel plus the non-backtracking *high-order* variant the paper's §6
//!   proposes as future work.
//!
//! Every kernel exposes both the paper's *graph feature map* (Definition 2)
//! and the *vertex feature map* (Definition 3) that DeepMap consumes; the
//! sum-of-vertex-maps identity `φ(G) = Σᵥ φ(v)` (Eq. 7) is enforced by the
//! test suite.
//!
//! Shared machinery lives in [`feature_map`] (sparse vectors, vocabularies,
//! dense conversion, top-K truncation) and [`mod@kernel_matrix`] (Gram matrices,
//! cosine normalisation, parallel assembly).

#![deny(missing_docs)]

pub mod dgk;
pub mod feature_map;
pub mod frozen;
pub mod gk;
pub mod gntk;
pub mod graphlet;
pub mod kernel_matrix;
pub mod retgk;
pub mod rw;
pub mod sp;
pub mod wl;

pub use feature_map::{DatasetFeatureMaps, SparseVec, Vocabulary};
pub use frozen::FrozenExtractor;
pub use kernel_matrix::KernelMatrix;

use deepmap_graph::Graph;

/// Which substructure family a feature map is built from.
///
/// These are the three DeepMap variants evaluated in the paper
/// (DEEPMAP-GK, DEEPMAP-SP, DEEPMAP-WL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// Graphlet counts: connected induced subgraphs of `size` vertices,
    /// `samples` random draws per vertex (per graph for graph-level maps).
    Graphlet {
        /// Graphlet size `k` (3–5 supported).
        size: usize,
        /// Number of sampled graphlets.
        samples: usize,
    },
    /// Shortest-path triplets `(min label, max label, length)`.
    ShortestPath,
    /// Weisfeiler–Lehman subtree patterns over `h` refinement iterations.
    WlSubtree {
        /// Number of WL iterations (depth of the subtree patterns).
        iterations: usize,
    },
}

impl FeatureKind {
    /// The paper's defaults: GK samples 20 graphlets of size 5 per vertex
    /// (§5.3.1).
    pub fn paper_graphlet() -> Self {
        FeatureKind::Graphlet {
            size: 5,
            samples: 20,
        }
    }

    /// WL with the mid-range depth of the paper's {0..5} grid.
    pub fn paper_wl() -> Self {
        FeatureKind::WlSubtree { iterations: 3 }
    }

    /// Short human-readable name (used in experiment tables).
    pub fn name(&self) -> &'static str {
        match self {
            FeatureKind::Graphlet { .. } => "GK",
            FeatureKind::ShortestPath => "SP",
            FeatureKind::WlSubtree { .. } => "WL",
        }
    }
}

/// Vertex feature maps (Definition 3) for a whole dataset, with a shared
/// vocabulary so vectors are comparable across graphs.
///
/// Per-graph extraction fans out over the shared `deepmap-par` pool. For
/// graphlets this uses one RNG stream per graph (each re-seeded with
/// `seed`), the same convention as the frozen serving path — so GK corpus
/// and serving vocabularies agree, and results are deterministic at any
/// thread count.
pub fn vertex_feature_maps(graphs: &[Graph], kind: FeatureKind, seed: u64) -> DatasetFeatureMaps {
    match kind {
        FeatureKind::Graphlet { size, samples } => {
            gk::vertex_feature_maps_per_graph(graphs, size, samples, seed)
        }
        FeatureKind::ShortestPath => sp::vertex_feature_maps(graphs),
        FeatureKind::WlSubtree { iterations } => wl::vertex_feature_maps(graphs, iterations),
    }
}

/// Graph feature maps (Definition 2): the per-vertex maps summed per graph
/// (Eq. 7).
pub fn graph_feature_maps(graphs: &[Graph], kind: FeatureKind, seed: u64) -> Vec<SparseVec> {
    vertex_feature_maps(graphs, kind, seed).sum_per_graph()
}

/// The flat R-convolution kernel matrix for `kind`: the linear kernel on the
/// graph feature maps, cosine-normalised (the standard protocol before the
/// C-SVM).
pub fn kernel_matrix(graphs: &[Graph], kind: FeatureKind, seed: u64) -> KernelMatrix {
    let maps = graph_feature_maps(graphs, kind, seed);
    KernelMatrix::linear(&maps).normalized()
}
