//! Weisfeiler–Lehman subtree kernel (WL) feature maps.
//!
//! One WL iteration (paper §3, Fig. 2) replaces every vertex label with a
//! compressed label for the pair *(own label, sorted multiset of neighbour
//! labels)*; compressed labels identify subtree patterns. The kernel's
//! feature map concatenates the label histograms of all iterations
//! (Eq. 4–5). The vertex feature map of `v` is the indicator of `v`'s own
//! label at each iteration — the subtree patterns *rooted at v* — whose sum
//! over vertices recovers exactly the graph histogram (Eq. 7 holds with
//! equality for WL).
//!
//! The label compressor is shared across the whole dataset so columns are
//! comparable between graphs, exactly as in Shervashidze et al. 2011.

use crate::feature_map::{DatasetFeatureMaps, SparseVec, Vocabulary};
use deepmap_graph::{FxHashMap, Graph};

/// The per-iteration label assignment for every graph in a dataset.
#[derive(Debug, Clone)]
pub struct WlRefinement {
    /// `labels[it][g][v]`: compressed label of vertex `v` of graph `g`
    /// after `it` iterations (`it = 0` is a dense renumbering of the
    /// original labels).
    pub labels: Vec<Vec<Vec<u32>>>,
    /// Number of distinct labels produced at each iteration.
    pub alphabet_sizes: Vec<usize>,
}

impl WlRefinement {
    /// Number of iterations performed (excluding iteration 0).
    pub fn iterations(&self) -> usize {
        self.labels.len() - 1
    }
}

/// Sentinel label for serve-time vertices whose label (or compressed
/// neighbourhood pattern) never occurred while fitting. It propagates
/// through later iterations and lands in the serving OOV feature bucket.
/// Fitted labels are dense renumberings starting at 0, so the sentinel can
/// never collide with a real label.
pub const WL_OOV_LABEL: u32 = u32::MAX;

/// The frozen WL state: the label dictionaries captured while fitting a
/// dataset — enough to refine a single unseen graph consistently with the
/// fitted corpus (see [`refine_one`]).
#[derive(Debug, Clone, Default)]
pub struct WlCompressors {
    /// Dense renumbering of the original vertex labels (iteration 0).
    pub base: FxHashMap<u32, u32>,
    /// One compressed-label dictionary per refinement iteration, keyed by
    /// *(own label, sorted neighbour labels)*.
    pub rounds: Vec<FxHashMap<(u32, Vec<u32>), u32>>,
}

/// Runs `h` WL refinement iterations over the whole dataset with one shared
/// compressor per iteration.
pub fn refine(graphs: &[Graph], h: usize) -> WlRefinement {
    refine_frozen(graphs, h).0
}

/// [`refine`], additionally returning the label dictionaries so the
/// refinement can later be replayed on unseen graphs ([`refine_one`]).
pub fn refine_frozen(graphs: &[Graph], h: usize) -> (WlRefinement, WlCompressors) {
    let mut labels: Vec<Vec<Vec<u32>>> = Vec::with_capacity(h + 1);
    let mut alphabet_sizes = Vec::with_capacity(h + 1);

    // Iteration 0: dense renumbering of the original labels.
    let mut base: FxHashMap<u32, u32> = FxHashMap::default();
    let initial: Vec<Vec<u32>> = graphs
        .iter()
        .map(|g| {
            g.labels()
                .iter()
                .map(|&l| {
                    let next = base.len() as u32;
                    *base.entry(l).or_insert(next)
                })
                .collect()
        })
        .collect();
    alphabet_sizes.push(base.len());
    labels.push(initial);

    let mut rounds = Vec::with_capacity(h);
    for _ in 0..h {
        let prev = labels.last().expect("iteration 0 exists");
        // Building the (own label, sorted neighbour labels) keys — the
        // sort-heavy part of a round — is a pure per-graph function of the
        // previous labels, so it fans out over the shared pool. Compressed
        // labels are then assigned sequentially in (graph, vertex) order,
        // which keeps the dictionaries identical at any thread count.
        let keyed: Vec<Vec<(u32, Vec<u32>)>> = deepmap_par::par_map_indexed(graphs, |gi, graph| {
            let current = &prev[gi];
            graph
                .vertices()
                .map(|v| {
                    let mut neigh: Vec<u32> = graph
                        .neighbors(v)
                        .iter()
                        .map(|&u| current[u as usize])
                        .collect();
                    neigh.sort_unstable();
                    (current[v as usize], neigh)
                })
                .collect()
        });
        let mut compressor: FxHashMap<(u32, Vec<u32>), u32> = FxHashMap::default();
        let next_labels: Vec<Vec<u32>> = keyed
            .into_iter()
            .map(|keys| {
                keys.into_iter()
                    .map(|key| {
                        let next = compressor.len() as u32;
                        *compressor.entry(key).or_insert(next)
                    })
                    .collect()
            })
            .collect();
        alphabet_sizes.push(compressor.len());
        labels.push(next_labels);
        rounds.push(compressor);
    }
    (
        WlRefinement {
            labels,
            alphabet_sizes,
        },
        WlCompressors { base, rounds },
    )
}

/// Refines a single (possibly unseen) graph against frozen dictionaries.
///
/// Returns `labels[it][v]` for `it` in `0..=h` where `h` is the number of
/// fitted rounds. Labels and neighbourhood patterns that never occurred at
/// fit time become [`WL_OOV_LABEL`]; once a vertex is OOV it stays OOV, and
/// a neighbourhood containing an OOV label can never match a fitted key, so
/// novelty propagates outward exactly one hop per iteration.
pub fn refine_one(graph: &Graph, compressors: &WlCompressors) -> Vec<Vec<u32>> {
    let mut labels = Vec::with_capacity(compressors.rounds.len() + 1);
    let initial: Vec<u32> = graph
        .labels()
        .iter()
        .map(|l| compressors.base.get(l).copied().unwrap_or(WL_OOV_LABEL))
        .collect();
    labels.push(initial);
    for round in &compressors.rounds {
        let current = labels.last().expect("iteration 0 exists");
        let mut new = Vec::with_capacity(graph.n_vertices());
        for v in graph.vertices() {
            let own = current[v as usize];
            if own == WL_OOV_LABEL {
                new.push(WL_OOV_LABEL);
                continue;
            }
            let mut neigh: Vec<u32> = graph
                .neighbors(v)
                .iter()
                .map(|&u| current[u as usize])
                .collect();
            neigh.sort_unstable();
            new.push(round.get(&(own, neigh)).copied().unwrap_or(WL_OOV_LABEL));
        }
        labels.push(new);
    }
    labels
}

/// Feature key for (iteration, label): iterations get disjoint column
/// namespaces so an original label never collides with a compressed one.
pub(crate) fn wl_key(iteration: usize, label: u32) -> u64 {
    ((iteration as u64) << 32) | label as u64
}

/// Vertex feature maps: `φ(v)[it, l] = 1` iff `v` carries label `l` at
/// iteration `it` (for `it` in `0..=h`).
pub fn vertex_feature_maps(graphs: &[Graph], h: usize) -> DatasetFeatureMaps {
    vertex_feature_maps_frozen(graphs, h).0
}

/// [`vertex_feature_maps`] plus the frozen dictionaries and vocabulary the
/// serving path needs to embed unseen graphs into the same columns.
pub fn vertex_feature_maps_frozen(
    graphs: &[Graph],
    h: usize,
) -> (DatasetFeatureMaps, WlCompressors, Vocabulary) {
    let (refinement, compressors) = refine_frozen(graphs, h);
    let mut vocab = Vocabulary::new();
    let mut maps: Vec<Vec<SparseVec>> = graphs
        .iter()
        .map(|g| vec![SparseVec::new(); g.n_vertices()])
        .collect();
    for (it, per_graph) in refinement.labels.iter().enumerate() {
        for (gi, vertex_labels) in per_graph.iter().enumerate() {
            for (v, &label) in vertex_labels.iter().enumerate() {
                let col = vocab.intern(wl_key(it, label));
                maps[gi][v].add(col, 1.0);
            }
        }
    }
    let dataset = DatasetFeatureMaps {
        maps,
        dim: vocab.len(),
    };
    (dataset, compressors, vocab)
}

/// Graph-level WL feature maps: concatenated label histograms (Eq. 5).
/// Identical to summing the vertex maps; provided directly for the flat WL
/// kernel baseline.
pub fn graph_feature_maps(graphs: &[Graph], h: usize) -> Vec<SparseVec> {
    vertex_feature_maps(graphs, h).sum_per_graph()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_graph::builder::graph_from_edges;

    /// The two non-isomorphic labeled graphs of the paper's Fig. 2 spirit:
    /// a labeled path and a labeled star.
    fn path_and_star() -> Vec<Graph> {
        vec![
            graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)], Some(&[1, 2, 2, 1])).unwrap(),
            graph_from_edges(4, &[(0, 1), (0, 2), (0, 3)], Some(&[1, 2, 2, 1])).unwrap(),
        ]
    }

    #[test]
    fn iteration_zero_renumbers_labels() {
        let graphs = path_and_star();
        let r = refine(&graphs, 0);
        assert_eq!(r.iterations(), 0);
        assert_eq!(r.alphabet_sizes[0], 2);
        // Same original label → same renumbered label across graphs.
        assert_eq!(r.labels[0][0][0], r.labels[0][1][0]);
        assert_eq!(r.labels[0][0][1], r.labels[0][1][1]);
    }

    #[test]
    fn refinement_distinguishes_path_from_star() {
        let graphs = path_and_star();
        let maps = graph_feature_maps(&graphs, 2);
        // Same label multiset at iteration 0, so maps overlap there…
        assert!(maps[0].dot(&maps[1]) > 0.0);
        // …but they are not identical once neighbourhoods are compressed.
        assert_ne!(maps[0], maps[1]);
    }

    #[test]
    fn isomorphic_graphs_equal_maps() {
        // Same path with a permuted vertex order.
        let g1 = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)], Some(&[1, 2, 2, 1])).unwrap();
        let g2 = graph_from_edges(4, &[(3, 2), (2, 1), (1, 0)], Some(&[1, 2, 2, 1])).unwrap();
        let maps = graph_feature_maps(&[g1, g2], 3);
        assert_eq!(maps[0], maps[1]);
    }

    #[test]
    fn vertex_maps_have_one_entry_per_iteration() {
        let graphs = path_and_star();
        let vmaps = vertex_feature_maps(&graphs, 3);
        for g in &vmaps.maps {
            for v in g {
                assert_eq!(v.total(), 4.0, "one label per iteration 0..=3");
            }
        }
    }

    #[test]
    fn sum_of_vertex_maps_is_graph_histogram() {
        let graphs = path_and_star();
        let vmaps = vertex_feature_maps(&graphs, 2);
        let summed = vmaps.sum_per_graph();
        let direct = graph_feature_maps(&graphs, 2);
        assert_eq!(summed, direct);
        // Total mass: n vertices × (h+1) iterations.
        assert_eq!(summed[0].total(), 4.0 * 3.0);
    }

    #[test]
    fn refinement_stabilises_alphabet_growth() {
        // On a vertex-transitive unlabeled cycle every vertex keeps the same
        // label forever: alphabet size stays 1.
        let mut rng = rand::SeedableRng::seed_from_u64(1);
        let g = deepmap_graph::generators::cycle_graph(6, 0, &mut rng);
        let r = refine(&[g], 4);
        assert!(r.alphabet_sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn degree_information_captured_at_iteration_one() {
        // Unlabeled path: endpoints (degree 1) and middles (degree 2) split.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)], None).unwrap();
        let r = refine(&[g], 1);
        assert_eq!(r.alphabet_sizes[1], 2);
        assert_eq!(r.labels[1][0][0], r.labels[1][0][3]);
        assert_eq!(r.labels[1][0][1], r.labels[1][0][2]);
        assert_ne!(r.labels[1][0][0], r.labels[1][0][1]);
    }

    #[test]
    fn empty_dataset_and_graph() {
        let r = refine(&[], 2);
        assert_eq!(r.labels.len(), 3);
        let g = graph_from_edges(0, &[], None).unwrap();
        let maps = vertex_feature_maps(&[g], 2);
        assert!(maps.maps[0].is_empty());
    }

    #[test]
    fn refine_one_replays_fitted_graphs_exactly() {
        let graphs = path_and_star();
        let (refinement, compressors) = refine_frozen(&graphs, 3);
        assert_eq!(compressors.rounds.len(), 3);
        for (gi, graph) in graphs.iter().enumerate() {
            let replayed = refine_one(graph, &compressors);
            for (it, per_iter) in replayed.iter().enumerate() {
                assert_eq!(
                    per_iter, &refinement.labels[it][gi],
                    "graph {gi} iteration {it}"
                );
            }
        }
    }

    #[test]
    fn refine_one_marks_unseen_labels_oov() {
        let graphs = path_and_star();
        let (_, compressors) = refine_frozen(&graphs, 2);
        // Vertex 1 carries label 99, never seen at fit time.
        let unseen = graph_from_edges(3, &[(0, 1), (1, 2)], Some(&[1, 99, 2])).unwrap();
        let labels = refine_one(&unseen, &compressors);
        assert_eq!(labels[0][1], WL_OOV_LABEL, "unseen base label");
        assert_ne!(labels[0][0], WL_OOV_LABEL, "label 1 was fitted");
        // OOV sticks at later iterations, and poisons its neighbours'
        // patterns one hop per round.
        assert_eq!(labels[1][1], WL_OOV_LABEL);
        assert_eq!(labels[1][0], WL_OOV_LABEL, "neighbourhood contains OOV");
    }

    #[test]
    fn refine_one_marks_unseen_neighbourhoods_oov() {
        // Fit on a path only; a star's hub has a (label, neighbourhood)
        // pattern the compressor never saw, even though all labels exist.
        let path = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)], Some(&[1, 1, 1, 1])).unwrap();
        let (_, compressors) = refine_frozen(std::slice::from_ref(&path), 1);
        let star = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3)], Some(&[1, 1, 1, 1])).unwrap();
        let labels = refine_one(&star, &compressors);
        assert!(
            labels[0].iter().all(|&l| l != WL_OOV_LABEL),
            "base labels fitted"
        );
        assert_eq!(
            labels[1][0], WL_OOV_LABEL,
            "degree-3 pattern unseen on a path"
        );
        assert_ne!(
            labels[1][1], WL_OOV_LABEL,
            "leaves look like path endpoints"
        );
    }
}
