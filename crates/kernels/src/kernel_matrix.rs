//! Gram matrices over graphs.

use crate::feature_map::SparseVec;

/// A symmetric positive-semidefinite kernel (Gram) matrix over a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMatrix {
    n: usize,
    data: Vec<f64>,
}

impl KernelMatrix {
    /// Zero matrix for `n` graphs.
    pub fn zeros(n: usize) -> Self {
        KernelMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Builds from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != n * n`.
    pub fn from_vec(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "kernel matrix shape mismatch");
        KernelMatrix { n, data }
    }

    /// Number of graphs.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `K(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.n + j]
    }

    /// Sets `K(i, j)` (caller maintains symmetry).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.n + j] = v;
    }

    /// Sets `K(i, j) = K(j, i) = v`.
    #[inline]
    pub fn set_sym(&mut self, i: usize, j: usize, v: f64) {
        self.set(i, j, v);
        self.set(j, i, v);
    }

    /// Linear kernel `K(i, j) = ⟨φ(Gᵢ), φ(Gⱼ)⟩` on sparse feature maps.
    pub fn linear(maps: &[SparseVec]) -> KernelMatrix {
        let n = maps.len();
        let mut k = KernelMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                k.set_sym(i, j, maps[i].dot(&maps[j]));
            }
        }
        k
    }

    /// Builds a kernel matrix from a symmetric pairwise function, computing
    /// only the upper triangle. When `threads > 1`, rows fan out over the
    /// shared `deepmap-par` pool (used by the expensive GNTK/RetGK pairs);
    /// the pool's own size — `DEEPMAP_THREADS` — governs the actual degree
    /// of parallelism. Entries are stitched back in row order, so the
    /// result is identical to the serial loop at any thread count.
    pub fn from_pairwise<F>(n: usize, threads: usize, f: F) -> KernelMatrix
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        let mut k = KernelMatrix::zeros(n);
        if threads <= 1 || n < 4 {
            for i in 0..n {
                for j in i..n {
                    k.set_sym(i, j, f(i, j));
                }
            }
            return k;
        }
        let rows = deepmap_par::par_map_index(n, |i| (i..n).map(|j| f(i, j)).collect::<Vec<f64>>());
        for (i, row) in rows.into_iter().enumerate() {
            for (offset, v) in row.into_iter().enumerate() {
                k.set_sym(i, i + offset, v);
            }
        }
        k
    }

    /// Cosine normalisation: `K'(i,j) = K(i,j) / sqrt(K(i,i) K(j,j))`.
    ///
    /// Graphs with zero self-similarity (empty feature maps) keep zero rows.
    pub fn normalized(&self) -> KernelMatrix {
        let mut out = KernelMatrix::zeros(self.n);
        for i in 0..self.n {
            let kii = self.get(i, i);
            for j in 0..self.n {
                let kjj = self.get(j, j);
                let denom = (kii * kjj).sqrt();
                let v = if denom > 0.0 {
                    self.get(i, j) / denom
                } else {
                    0.0
                };
                out.set(i, j, v);
            }
        }
        out
    }

    /// Maximum absolute asymmetry `|K(i,j) - K(j,i)|` (0 for exact kernels;
    /// used by tests).
    pub fn asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                worst = worst.max((self.get(i, j) - self.get(j, i)).abs());
            }
        }
        worst
    }

    /// Diagonal entries.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.get(i, i)).collect()
    }

    /// Submatrix over `rows` × `cols` (for CV train/test splits).
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|&i| cols.iter().map(|&j| self.get(i, j)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_vectors() -> Vec<SparseVec> {
        vec![
            SparseVec::from_pairs(vec![(0, 1.0), (1, 1.0)]),
            SparseVec::from_pairs(vec![(1, 2.0)]),
            SparseVec::from_pairs(vec![(2, 3.0)]),
        ]
    }

    #[test]
    fn linear_kernel_values() {
        let k = KernelMatrix::linear(&toy_vectors());
        assert_eq!(k.get(0, 0), 2.0);
        assert_eq!(k.get(0, 1), 2.0);
        assert_eq!(k.get(1, 1), 4.0);
        assert_eq!(k.get(0, 2), 0.0);
        assert_eq!(k.asymmetry(), 0.0);
    }

    #[test]
    fn normalized_has_unit_diagonal() {
        let k = KernelMatrix::linear(&toy_vectors()).normalized();
        for i in 0..3 {
            assert!((k.get(i, i) - 1.0).abs() < 1e-12);
        }
        // cos(v0, v1) = 2 / (sqrt(2) * 2)
        assert!((k.get(0, 1) - 2.0 / (2.0 * 2.0f64.sqrt())).abs() < 1e-12);
        // Off-diagonals bounded by 1 (Cauchy–Schwarz).
        for i in 0..3 {
            for j in 0..3 {
                assert!(k.get(i, j) <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn normalized_zero_row_stays_zero() {
        let vecs = vec![SparseVec::new(), SparseVec::from_pairs(vec![(0, 1.0)])];
        let k = KernelMatrix::linear(&vecs).normalized();
        assert_eq!(k.get(0, 0), 0.0);
        assert_eq!(k.get(0, 1), 0.0);
    }

    #[test]
    fn from_pairwise_matches_serial() {
        let f = |i: usize, j: usize| (i * 10 + j) as f64 + (j * 10 + i) as f64;
        let serial = KernelMatrix::from_pairwise(9, 1, f);
        let parallel = KernelMatrix::from_pairwise(9, 4, f);
        assert_eq!(serial, parallel);
        assert_eq!(serial.get(2, 3), 23.0 + 32.0);
        assert_eq!(serial.asymmetry(), 0.0);
    }

    #[test]
    fn submatrix_extraction() {
        let k = KernelMatrix::linear(&toy_vectors());
        let sub = k.submatrix(&[0, 2], &[1]);
        assert_eq!(sub, vec![vec![2.0], vec![0.0]]);
    }

    #[test]
    fn diagonal_access() {
        let k = KernelMatrix::linear(&toy_vectors());
        assert_eq!(k.diagonal(), vec![2.0, 4.0, 9.0]);
    }
}
