//! RetGK (Zhang et al. 2018): graph kernels from return probabilities of
//! random walks.
//!
//! Each vertex gets a *return-probability feature* (RPF): the vector
//! `[P¹(v,v), P²(v,v), …, P^S(v,v)]` of probabilities that an `s`-step
//! random walk starting at `v` returns to `v`, for `s = 1..S`. The RPF is an
//! isomorphism-invariant structural role descriptor. Graphs — as sets of
//! vertex descriptors — are then compared with a Gaussian mean-map (MMD)
//! kernel.
//!
//! Simplification vs. the original (documented in DESIGN.md): RetGK(II)
//! embeds RPFs with approximate feature maps for scalability; our graphs are
//! small, so we evaluate the exact mean-map double sum, and vertex labels
//! enter through a label-agreement factor rather than the paper's product
//! kernel over attribute types — the same structure, fewer knobs.

use crate::kernel_matrix::KernelMatrix;
use deepmap_graph::Graph;

/// Hyper-parameters of the RetGK baseline.
#[derive(Debug, Clone, Copy)]
pub struct RetGkConfig {
    /// Number of random-walk steps `S` in the RPF.
    pub steps: usize,
    /// Gaussian bandwidth `γ` in `exp(-γ‖·‖²)`.
    pub gamma: f64,
    /// Weight of the label-agreement factor: pairs with equal labels score
    /// `1 + label_weight`, others `1`.
    pub label_weight: f64,
    /// Threads for Gram-matrix assembly.
    pub threads: usize,
}

impl Default for RetGkConfig {
    fn default() -> Self {
        RetGkConfig {
            steps: 20,
            gamma: 1.0,
            label_weight: 1.0,
            threads: 1,
        }
    }
}

/// Return-probability features of every vertex: `rpf[v][s-1] = P^s(v, v)`.
///
/// Computed exactly by propagating the indicator distribution of each
/// source through the transition operator `S` times: `O(S · n · |E|)` per
/// graph.
pub fn return_probability_features(graph: &Graph, steps: usize) -> Vec<Vec<f64>> {
    let n = graph.n_vertices();
    let mut rpf = vec![vec![0.0; steps]; n];
    for v in 0..n {
        let mut x = vec![0.0; n];
        x[v] = 1.0;
        for slot in rpf[v].iter_mut() {
            x = graph.transition_apply(&x);
            *slot = x[v];
        }
    }
    rpf
}

fn gaussian(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

/// The exact mean-map kernel between two graphs' vertex descriptor sets.
fn pair_kernel(
    rpf1: &[Vec<f64>],
    labels1: &[u32],
    rpf2: &[Vec<f64>],
    labels2: &[u32],
    config: &RetGkConfig,
) -> f64 {
    if rpf1.is_empty() || rpf2.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0;
    for (a, &la) in rpf1.iter().zip(labels1) {
        for (b, &lb) in rpf2.iter().zip(labels2) {
            let label_factor = if la == lb {
                1.0 + config.label_weight
            } else {
                1.0
            };
            acc += gaussian(a, b, config.gamma) * label_factor;
        }
    }
    acc / (rpf1.len() * rpf2.len()) as f64
}

/// The cosine-normalised RetGK Gram matrix over a dataset.
pub fn kernel_matrix(graphs: &[Graph], config: &RetGkConfig) -> KernelMatrix {
    let rpfs: Vec<Vec<Vec<f64>>> = graphs
        .iter()
        .map(|g| return_probability_features(g, config.steps))
        .collect();
    let labels: Vec<&[u32]> = graphs.iter().map(|g| g.labels()).collect();
    KernelMatrix::from_pairwise(graphs.len(), config.threads, |i, j| {
        pair_kernel(&rpfs[i], labels[i], &rpfs[j], labels[j], config)
    })
    .normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_graph::builder::graph_from_edges;
    use deepmap_graph::generators::{complete_graph, cycle_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rpf_on_two_cycle_vertices_alternate() {
        // A single edge: the walk returns with certainty every even step.
        let g = graph_from_edges(2, &[(0, 1)], None).unwrap();
        let rpf = return_probability_features(&g, 4);
        assert_eq!(rpf[0], vec![0.0, 1.0, 0.0, 1.0]);
        assert_eq!(rpf[1], vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn rpf_triangle_known_values() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (0, 2)], None).unwrap();
        let rpf = return_probability_features(&g, 3);
        // Triangle: P¹ = 0, P² = 1/2, P³ = (number of closed 3-walks)/8 = 2/8.
        assert!((rpf[0][0] - 0.0).abs() < 1e-12);
        assert!((rpf[0][1] - 0.5).abs() < 1e-12);
        assert!((rpf[0][2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rpf_is_isomorphism_invariant_on_transitive_graphs() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = cycle_graph(8, 0, &mut rng);
        let rpf = return_probability_features(&g, 10);
        for v in 1..8 {
            assert_eq!(rpf[0], rpf[v], "vertex-transitive graph: identical RPFs");
        }
    }

    #[test]
    fn gram_properties() {
        let mut rng = StdRng::seed_from_u64(2);
        let graphs = vec![
            cycle_graph(6, 0, &mut rng),
            cycle_graph(8, 0, &mut rng),
            complete_graph(6, 0, &mut rng),
        ];
        let k = kernel_matrix(&graphs, &RetGkConfig::default());
        assert!(k.asymmetry() < 1e-12);
        for i in 0..3 {
            assert!((k.get(i, i) - 1.0).abs() < 1e-9);
        }
        // Cycles resemble each other more than the clique.
        assert!(k.get(0, 1) > k.get(0, 2));
    }

    #[test]
    fn parallel_assembly_matches_serial() {
        let mut rng = StdRng::seed_from_u64(3);
        let graphs: Vec<_> = (4..10).map(|n| cycle_graph(n, 0, &mut rng)).collect();
        let serial = kernel_matrix(
            &graphs,
            &RetGkConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let parallel = kernel_matrix(
            &graphs,
            &RetGkConfig {
                threads: 4,
                ..Default::default()
            },
        );
        for i in 0..graphs.len() {
            for j in 0..graphs.len() {
                assert!((serial.get(i, j) - parallel.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn label_agreement_raises_similarity() {
        let a = graph_from_edges(3, &[(0, 1), (1, 2)], Some(&[1, 1, 1])).unwrap();
        let b = graph_from_edges(3, &[(0, 1), (1, 2)], Some(&[1, 1, 1])).unwrap();
        let c = graph_from_edges(3, &[(0, 1), (1, 2)], Some(&[2, 2, 2])).unwrap();
        let k = kernel_matrix(&[a, b, c], &RetGkConfig::default());
        assert!(k.get(0, 1) > k.get(0, 2), "same labels should score higher");
    }

    #[test]
    fn empty_graph_zero_row() {
        let g0 = graph_from_edges(0, &[], None).unwrap();
        let g1 = graph_from_edges(2, &[(0, 1)], None).unwrap();
        let k = kernel_matrix(&[g0, g1], &RetGkConfig::default());
        assert_eq!(k.get(0, 1), 0.0);
        assert_eq!(k.get(0, 0), 0.0);
    }
}
