//! Frozen-vocabulary feature extraction for serving.
//!
//! The corpus-fitting paths ([`crate::vertex_feature_maps`]) intern
//! substructure keys on first sight, so the column assignment depends on the
//! whole dataset. A deployed model must instead embed *one unseen graph at a
//! time* into exactly the columns the model was trained on. A
//! [`FrozenExtractor`] captures everything that fit decided — the key →
//! column table, the WL label dictionaries, the graphlet sampling seed — and
//! replays it on single graphs:
//!
//! - keys seen at fit time map to their fitted column;
//! - keys never seen map to a dedicated **OOV bucket**, the last column
//!   (always zero during training, so the model learns to ignore it);
//! - keys seen but later dropped by top-K truncation are **discarded**,
//!   matching how [`DatasetFeatureMaps::truncate_top_k`] built the training
//!   tensors (a rare-but-known feature is evidence the model never used,
//!   which is different from a never-seen feature).
//!
//! The extractor serialises to a small hand-rolled binary blob
//! ([`FrozenExtractor::to_bytes`]) that the serving `ModelBundle` embeds.

use crate::feature_map::{DatasetFeatureMaps, SparseVec, Vocabulary};
use crate::wl::{self, WlCompressors};
use crate::{gk, sp, FeatureKind};
use deepmap_graph::{FxHashMap, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Column sentinel for keys that were interned at fit time but dropped by
/// top-K truncation. Distinct from OOV: the key is *known* but carries no
/// trained column, so serve-time occurrences are discarded (exactly as the
/// truncated training tensors discarded them). Real columns are dense
/// indices `< n_cols`, so the sentinel cannot collide.
const PRUNED: u32 = u32::MAX;

/// The per-kind state a frozen extractor needs beyond the vocabulary.
#[derive(Debug, Clone)]
enum FrozenState {
    /// Graphlet sampling parameters; `seed` re-creates the per-graph RNG.
    Graphlet {
        size: usize,
        samples: usize,
        seed: u64,
    },
    /// Shortest-path triplets are deterministic; no extra state.
    ShortestPath,
    /// WL label dictionaries captured while fitting.
    Wl { compressors: WlCompressors },
}

/// A feature extractor with its vocabulary frozen at fit time, able to embed
/// single unseen graphs into the training feature space.
#[derive(Debug, Clone)]
pub struct FrozenExtractor {
    state: FrozenState,
    /// `(key, column)` pairs sorted by key; column may be [`PRUNED`].
    vocab: Vec<(u64, u32)>,
    /// Number of real (non-OOV) columns after any truncation.
    n_cols: usize,
}

impl FrozenExtractor {
    /// Fits vertex feature maps over `graphs` exactly like
    /// [`crate::vertex_feature_maps`] does for `kind`, and freezes the
    /// resulting vocabulary.
    ///
    /// The returned [`DatasetFeatureMaps`] uses the same columns the frozen
    /// extractor will produce at serve time, so a model trained on them is
    /// directly servable. For the graphlet kind the RNG is re-seeded from
    /// `seed` *per graph* (instead of one stream shared across the corpus)
    /// so that [`embed_one`](FrozenExtractor::embed_one) replays the exact
    /// samples later.
    pub fn fit(
        graphs: &[Graph],
        kind: FeatureKind,
        seed: u64,
    ) -> (DatasetFeatureMaps, FrozenExtractor) {
        // GK and SP extraction is a pure per-graph function (GK re-seeds
        // its RNG per graph), so it fans out over the shared `deepmap-par`
        // pool; vocabulary interning stays sequential in graph order so
        // column assignment is independent of the thread count.
        match kind {
            FeatureKind::Graphlet { size, samples } => {
                let keyed = deepmap_par::par_map_indexed(graphs, |_, graph| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    gk::keyed_vertex_features(graph, size, samples, &mut rng)
                });
                let mut vocab = Vocabulary::new();
                let maps = keyed
                    .into_iter()
                    .map(|k| crate::feature_map::intern_keyed(k, &mut vocab))
                    .collect();
                Self::package(
                    maps,
                    vocab,
                    FrozenState::Graphlet {
                        size,
                        samples,
                        seed,
                    },
                )
            }
            FeatureKind::ShortestPath => {
                let keyed = deepmap_par::par_map_indexed(graphs, |_, graph| {
                    sp::keyed_vertex_features(graph)
                });
                let mut vocab = Vocabulary::new();
                let maps = keyed
                    .into_iter()
                    .map(|k| crate::feature_map::intern_keyed(k, &mut vocab))
                    .collect();
                Self::package(maps, vocab, FrozenState::ShortestPath)
            }
            FeatureKind::WlSubtree { iterations } => {
                let (dataset, compressors, vocab) =
                    wl::vertex_feature_maps_frozen(graphs, iterations);
                let extractor = FrozenExtractor {
                    state: FrozenState::Wl { compressors },
                    n_cols: vocab.len(),
                    vocab: vocab.to_pairs(),
                };
                (dataset, extractor)
            }
        }
    }

    fn package(
        maps: Vec<Vec<SparseVec>>,
        vocab: Vocabulary,
        state: FrozenState,
    ) -> (DatasetFeatureMaps, FrozenExtractor) {
        let dataset = DatasetFeatureMaps {
            maps,
            dim: vocab.len(),
        };
        let extractor = FrozenExtractor {
            state,
            n_cols: vocab.len(),
            vocab: vocab.to_pairs(),
        };
        (dataset, extractor)
    }

    /// Serve-time feature dimension: the fitted (possibly truncated) columns
    /// plus the trailing OOV bucket. Training tensors must be assembled with
    /// this dimension so the model has a (zero) input for the bucket.
    pub fn dim(&self) -> usize {
        self.n_cols + 1
    }

    /// The column of the OOV bucket (the last one).
    pub fn oov_column(&self) -> u32 {
        self.n_cols as u32
    }

    /// The sorted vertex-label alphabet seen while fitting, when the
    /// feature family records one. WL keeps its base-label dictionary, so
    /// the training alphabet is recoverable; graphlet counts ignore labels
    /// and shortest-path triplets hash them irreversibly, so those return
    /// `None`. Serving layers use this for optional input validation.
    pub fn label_alphabet(&self) -> Option<Vec<u32>> {
        match &self.state {
            FrozenState::Wl { compressors } => {
                let mut labels: Vec<u32> = compressors.base.keys().copied().collect();
                labels.sort_unstable();
                Some(labels)
            }
            FrozenState::Graphlet { .. } | FrozenState::ShortestPath => None,
        }
    }

    /// The feature family this extractor was fitted for.
    pub fn kind(&self) -> FeatureKind {
        match &self.state {
            FrozenState::Graphlet { size, samples, .. } => FeatureKind::Graphlet {
                size: *size,
                samples: *samples,
            },
            FrozenState::ShortestPath => FeatureKind::ShortestPath,
            FrozenState::Wl { compressors } => FeatureKind::WlSubtree {
                iterations: compressors.rounds.len(),
            },
        }
    }

    /// Applies the top-K truncation `mapping` (from
    /// [`DatasetFeatureMaps::top_k_mapping`]) to the frozen vocabulary:
    /// surviving keys are renumbered, dropped keys are marked [`PRUNED`] so
    /// serve-time occurrences are discarded rather than bucketed as OOV.
    pub fn truncate(&mut self, mapping: &FxHashMap<u32, u32>, k: usize) {
        for entry in &mut self.vocab {
            entry.1 = mapping.get(&entry.1).copied().unwrap_or(PRUNED);
        }
        self.n_cols = k;
    }

    /// Serve-time column for a substructure key: the fitted column, `None`
    /// for fitted-but-pruned keys, the OOV bucket for unseen keys.
    fn column_for(&self, key: u64) -> Option<u32> {
        match self.vocab.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => {
                let col = self.vocab[i].1;
                if col == PRUNED {
                    None
                } else {
                    Some(col)
                }
            }
            Err(_) => Some(self.oov_column()),
        }
    }

    fn keyed_to_sparse(&self, keyed: Vec<Vec<(u64, f32)>>) -> Vec<SparseVec> {
        keyed
            .into_iter()
            .map(|pairs| {
                let mut vec = SparseVec::new();
                for (key, value) in pairs {
                    if let Some(col) = self.column_for(key) {
                        vec.add(col, value);
                    }
                }
                vec
            })
            .collect()
    }

    /// Per-vertex feature maps of a single (possibly unseen) graph in the
    /// frozen feature space: columns `0..n_cols` are the fitted features,
    /// column [`oov_column`](FrozenExtractor::oov_column) accumulates
    /// substructures never seen at fit time.
    ///
    /// For graphs that were part of the fitted corpus this reproduces the
    /// maps returned by [`fit`](FrozenExtractor::fit) bit-for-bit (the
    /// graphlet RNG is re-seeded identically).
    pub fn embed_one(&self, graph: &Graph) -> Vec<SparseVec> {
        match &self.state {
            FrozenState::Graphlet {
                size,
                samples,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                self.keyed_to_sparse(gk::keyed_vertex_features(graph, *size, *samples, &mut rng))
            }
            FrozenState::ShortestPath => self.keyed_to_sparse(sp::keyed_vertex_features(graph)),
            FrozenState::Wl { compressors } => {
                // OOV labels map through wl_key to a key no fitted round can
                // contain (fitted labels are dense from 0), so they land in
                // the OOV bucket without special-casing.
                let labels = wl::refine_one(graph, compressors);
                let keyed: Vec<Vec<(u64, f32)>> = (0..graph.n_vertices())
                    .map(|v| {
                        labels
                            .iter()
                            .enumerate()
                            .map(|(it, per_iter)| (wl::wl_key(it, per_iter[v]), 1.0))
                            .collect()
                    })
                    .collect();
                self.keyed_to_sparse(keyed)
            }
        }
    }

    /// Serialises the extractor to a little-endian binary blob (embedded in
    /// the serving bundle; the container supplies magic/versioning).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match &self.state {
            FrozenState::Graphlet {
                size,
                samples,
                seed,
            } => {
                out.push(0u8);
                put_u64(&mut out, *size as u64);
                put_u64(&mut out, *samples as u64);
                put_u64(&mut out, *seed);
            }
            FrozenState::ShortestPath => out.push(1u8),
            FrozenState::Wl { compressors } => {
                out.push(2u8);
                let mut base: Vec<(u32, u32)> =
                    compressors.base.iter().map(|(&k, &v)| (k, v)).collect();
                base.sort_unstable();
                put_u64(&mut out, base.len() as u64);
                for (orig, dense) in base {
                    put_u32(&mut out, orig);
                    put_u32(&mut out, dense);
                }
                put_u64(&mut out, compressors.rounds.len() as u64);
                for round in &compressors.rounds {
                    let mut entries: Vec<(&(u32, Vec<u32>), u32)> =
                        round.iter().map(|(k, &v)| (k, v)).collect();
                    entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
                    put_u64(&mut out, entries.len() as u64);
                    for ((own, neigh), compressed) in entries {
                        put_u32(&mut out, *own);
                        put_u64(&mut out, neigh.len() as u64);
                        for &n in neigh {
                            put_u32(&mut out, n);
                        }
                        put_u32(&mut out, compressed);
                    }
                }
            }
        }
        put_u64(&mut out, self.n_cols as u64);
        put_u64(&mut out, self.vocab.len() as u64);
        for &(key, col) in &self.vocab {
            put_u64(&mut out, key);
            put_u32(&mut out, col);
        }
        out
    }

    /// Deserialises a blob produced by
    /// [`to_bytes`](FrozenExtractor::to_bytes). Rejects malformed input
    /// (short reads, unsorted vocabularies, trailing bytes) with a
    /// description of what is wrong.
    pub fn from_bytes(data: &[u8]) -> Result<FrozenExtractor, String> {
        let mut r = Reader { data, pos: 0 };
        let state = match r.u8()? {
            0 => FrozenState::Graphlet {
                size: r.u64()? as usize,
                samples: r.u64()? as usize,
                seed: r.u64()?,
            },
            1 => FrozenState::ShortestPath,
            2 => {
                let n_base = r.u64()? as usize;
                let mut base = FxHashMap::default();
                for _ in 0..n_base {
                    let orig = r.u32()?;
                    let dense = r.u32()?;
                    if base.insert(orig, dense).is_some() {
                        return Err(format!("duplicate WL base label {orig}"));
                    }
                }
                let n_rounds = r.u64()? as usize;
                if n_rounds > r.remaining() {
                    return Err(format!("WL round count {n_rounds} exceeds payload"));
                }
                let mut rounds = Vec::with_capacity(n_rounds);
                for _ in 0..n_rounds {
                    let n_entries = r.u64()? as usize;
                    let mut round = FxHashMap::default();
                    for _ in 0..n_entries {
                        let own = r.u32()?;
                        let n_neigh = r.u64()? as usize;
                        if n_neigh > r.remaining() / 4 {
                            return Err(format!("WL neighbour count {n_neigh} exceeds payload"));
                        }
                        let mut neigh = Vec::with_capacity(n_neigh);
                        for _ in 0..n_neigh {
                            neigh.push(r.u32()?);
                        }
                        let compressed = r.u32()?;
                        if round.insert((own, neigh), compressed).is_some() {
                            return Err("duplicate WL round entry".to_string());
                        }
                    }
                    rounds.push(round);
                }
                FrozenState::Wl {
                    compressors: WlCompressors { base, rounds },
                }
            }
            tag => return Err(format!("unknown frozen-extractor kind tag {tag}")),
        };
        let n_cols = r.u64()? as usize;
        let n_vocab = r.u64()? as usize;
        if n_vocab > r.remaining() / 12 {
            return Err(format!("vocabulary count {n_vocab} exceeds payload"));
        }
        let mut vocab = Vec::with_capacity(n_vocab);
        for _ in 0..n_vocab {
            let key = r.u64()?;
            let col = r.u32()?;
            if let Some(&(prev, _)) = vocab.last() {
                if prev >= key {
                    return Err("vocabulary keys not strictly sorted".to_string());
                }
            }
            vocab.push((key, col));
        }
        if r.remaining() != 0 {
            return Err(format!(
                "{} trailing bytes after frozen extractor",
                r.remaining()
            ));
        }
        Ok(FrozenExtractor {
            state,
            vocab,
            n_cols,
        })
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.data.len() {
            return Err(format!(
                "unexpected end of frozen extractor at byte {}",
                self.pos
            ));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_graph::builder::graph_from_edges;
    use deepmap_graph::generators::{complete_graph, cycle_graph};

    fn toy_graphs() -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(5);
        vec![
            cycle_graph(6, 0, &mut rng),
            complete_graph(5, 0, &mut rng),
            cycle_graph(7, 0, &mut rng),
            complete_graph(6, 0, &mut rng),
        ]
    }

    fn all_kinds() -> Vec<FeatureKind> {
        vec![
            FeatureKind::Graphlet {
                size: 3,
                samples: 10,
            },
            FeatureKind::ShortestPath,
            FeatureKind::WlSubtree { iterations: 2 },
        ]
    }

    #[test]
    fn embed_one_replays_fit_for_every_kind() {
        let graphs = toy_graphs();
        for kind in all_kinds() {
            let (maps, frozen) = FrozenExtractor::fit(&graphs, kind, 42);
            assert_eq!(frozen.dim(), maps.dim + 1, "{kind:?}: OOV bucket appended");
            for (gi, graph) in graphs.iter().enumerate() {
                let embedded = frozen.embed_one(graph);
                assert_eq!(embedded, maps.maps[gi], "{kind:?}: graph {gi}");
            }
        }
    }

    #[test]
    fn unseen_features_land_in_oov_bucket() {
        // Fit SP on label-1 paths; serve a graph with unseen label 9.
        let fit = vec![graph_from_edges(3, &[(0, 1), (1, 2)], Some(&[1, 1, 1])).unwrap()];
        let (_, frozen) = FrozenExtractor::fit(&fit, FeatureKind::ShortestPath, 0);
        let unseen = graph_from_edges(3, &[(0, 1), (1, 2)], Some(&[9, 9, 9])).unwrap();
        let embedded = frozen.embed_one(&unseen);
        for v in &embedded {
            assert_eq!(v.nnz(), 1, "all mass in one bucket");
            assert!(v.get(frozen.oov_column()) > 0.0, "…the OOV bucket");
        }
        // A label-1 path still hits the fitted columns.
        let seen = graph_from_edges(3, &[(0, 1), (1, 2)], Some(&[1, 1, 1])).unwrap();
        for v in &frozen.embed_one(&seen) {
            assert_eq!(v.get(frozen.oov_column()), 0.0);
        }
    }

    #[test]
    fn wl_oov_labels_bucket_not_pruned() {
        let fit =
            vec![graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)], Some(&[1, 1, 1, 1])).unwrap()];
        let (_, frozen) = FrozenExtractor::fit(&fit, FeatureKind::WlSubtree { iterations: 1 }, 0);
        // Star hub: base label fitted, iteration-1 pattern unseen → exactly
        // one OOV count (the iteration-1 slot).
        let star = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3)], Some(&[1, 1, 1, 1])).unwrap();
        let embedded = frozen.embed_one(&star);
        assert_eq!(embedded[0].get(frozen.oov_column()), 1.0);
        assert_eq!(embedded[0].total(), 2.0, "one label per iteration 0..=1");
        assert_eq!(
            embedded[1].get(frozen.oov_column()),
            0.0,
            "leaf patterns fitted"
        );
    }

    #[test]
    fn truncation_prunes_rather_than_buckets() {
        let graphs = toy_graphs();
        let (maps, mut frozen) =
            FrozenExtractor::fit(&graphs, FeatureKind::WlSubtree { iterations: 2 }, 0);
        let k = maps.dim / 2;
        let mapping = maps.top_k_mapping(k).expect("dim > k");
        let truncated = maps.apply_mapping(&mapping, k);
        frozen.truncate(&mapping, k);
        assert_eq!(frozen.dim(), k + 1);
        for (gi, graph) in graphs.iter().enumerate() {
            let embedded = frozen.embed_one(graph);
            assert_eq!(
                embedded, truncated.maps[gi],
                "pruned columns dropped, graph {gi}"
            );
            for v in &embedded {
                assert_eq!(v.get(frozen.oov_column()), 0.0, "fitted keys never bucket");
            }
        }
    }

    #[test]
    fn serialization_roundtrip_for_every_kind() {
        let graphs = toy_graphs();
        for kind in all_kinds() {
            let (maps, mut frozen) = FrozenExtractor::fit(&graphs, kind, 99);
            if let Some(mapping) = maps.top_k_mapping(maps.dim / 2) {
                frozen.truncate(&mapping, maps.dim / 2);
            }
            let blob = frozen.to_bytes();
            let restored = FrozenExtractor::from_bytes(&blob).expect("roundtrip");
            assert_eq!(restored.dim(), frozen.dim(), "{kind:?}");
            assert_eq!(restored.kind(), frozen.kind(), "{kind:?}");
            for graph in &graphs {
                assert_eq!(
                    restored.embed_one(graph),
                    frozen.embed_one(graph),
                    "{kind:?}"
                );
            }
        }
    }

    #[test]
    fn from_bytes_rejects_malformed_blobs() {
        let graphs = toy_graphs();
        let (_, frozen) =
            FrozenExtractor::fit(&graphs, FeatureKind::WlSubtree { iterations: 1 }, 0);
        let blob = frozen.to_bytes();
        // Trailing junk.
        let mut long = blob.clone();
        long.push(0);
        assert!(FrozenExtractor::from_bytes(&long)
            .unwrap_err()
            .contains("trailing"));
        // Truncation mid-payload.
        assert!(FrozenExtractor::from_bytes(&blob[..blob.len() - 3]).is_err());
        // Unknown kind tag.
        let mut bad = blob;
        bad[0] = 7;
        assert!(FrozenExtractor::from_bytes(&bad)
            .unwrap_err()
            .contains("kind tag"));
        // Empty payload.
        assert!(FrozenExtractor::from_bytes(&[]).is_err());
    }
}
