//! Thread-count determinism: the tentpole guarantee of the shared
//! `deepmap-par` pool is that every pipeline stage — feature extraction,
//! tensor assembly, and data-parallel training — produces bit-identical
//! results no matter how many workers it fans out over.

use deepmap_core::{DeepMap, DeepMapConfig};
use deepmap_graph::generators::{complete_graph, cycle_graph};
use deepmap_graph::Graph;
use deepmap_kernels::FeatureKind;
use deepmap_nn::train::TrainConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn toy_dataset(pairs: usize, seed: u64) -> (Vec<Graph>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..pairs {
        graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
        labels.push(0);
        graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
        labels.push(1);
    }
    (graphs, labels)
}

fn config(kind: FeatureKind) -> DeepMapConfig {
    DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: 3,
            batch_size: 4,
            learning_rate: 0.01,
            seed: 13,
        },
        seed: 13,
        ..DeepMapConfig::paper(kind)
    }
}

fn all_kinds() -> Vec<FeatureKind> {
    vec![
        FeatureKind::Graphlet {
            size: 3,
            samples: 10,
        },
        FeatureKind::ShortestPath,
        FeatureKind::WlSubtree { iterations: 2 },
    ]
}

#[test]
fn prepared_tensors_bit_identical_across_thread_counts() {
    let (graphs, labels) = toy_dataset(5, 3);
    for kind in all_kinds() {
        let dm = DeepMap::new(config(kind));
        deepmap_par::set_threads(4);
        let a = dm.try_prepare(&graphs, &labels).expect("prepare");
        deepmap_par::set_threads(1);
        let b = dm.try_prepare(&graphs, &labels).expect("prepare");
        assert_eq!(a.w, b.w, "{kind:?}");
        assert_eq!(a.m, b.m, "{kind:?}");
        for (i, (sa, sb)) in a.samples.iter().zip(&b.samples).enumerate() {
            assert_eq!(sa.label, sb.label);
            assert_eq!(sa.input, sb.input, "{kind:?}: tensor {i}");
        }
    }
}

#[test]
fn frozen_prepare_bit_identical_across_thread_counts() {
    let (graphs, labels) = toy_dataset(5, 4);
    for kind in all_kinds() {
        let dm = DeepMap::new(config(kind));
        deepmap_par::set_threads(4);
        let (a, pre_a) = dm.try_prepare_frozen(&graphs, &labels).expect("prepare");
        deepmap_par::set_threads(1);
        let (b, pre_b) = dm.try_prepare_frozen(&graphs, &labels).expect("prepare");
        assert_eq!(a.m, b.m, "{kind:?}");
        for (i, (sa, sb)) in a.samples.iter().zip(&b.samples).enumerate() {
            assert_eq!(sa.input, sb.input, "{kind:?}: tensor {i}");
        }
        // The frozen vocabularies must agree too: serve-time embeddings of
        // a fresh graph are the same whichever pool size fitted them.
        let mut rng = StdRng::seed_from_u64(99);
        let fresh = cycle_graph(7, 0, &mut rng);
        assert_eq!(pre_a.embed_one(&fresh), pre_b.embed_one(&fresh), "{kind:?}");
    }
}

#[test]
fn fit_split_weights_bit_identical_across_thread_counts() {
    let (graphs, labels) = toy_dataset(6, 5);
    let dm = DeepMap::new(config(FeatureKind::WlSubtree { iterations: 2 }));
    let train_idx: Vec<usize> = (0..8).collect();
    let test_idx: Vec<usize> = (8..graphs.len()).collect();

    let run = |threads: usize| {
        deepmap_par::set_threads(threads);
        let prepared = dm.try_prepare(&graphs, &labels).expect("prepare");
        let result = dm.fit_split(&prepared, &train_idx, &test_idx);
        let weights: Vec<Vec<f32>> = result
            .model
            .param_values()
            .iter()
            .map(|v| v.to_vec())
            .collect();
        (result.history, result.test_accuracy, weights)
    };
    let (h1, acc1, w1) = run(1);
    let (h4, acc4, w4) = run(4);

    assert_eq!(h1.len(), h4.len());
    for (a, b) in h1.iter().zip(&h4) {
        assert_eq!(a.loss, b.loss, "epoch {} loss", a.epoch);
        assert_eq!(a.train_accuracy, b.train_accuracy, "epoch {}", a.epoch);
        assert_eq!(a.eval_accuracy, b.eval_accuracy, "epoch {}", a.epoch);
    }
    assert_eq!(acc1, acc4);
    assert_eq!(w1, w4, "final weights must be bit-identical");
}
