//! Property-based tests for the DeepMap core pipeline stages.

use deepmap_core::alignment::{vertex_sequence, VertexOrdering};
use deepmap_core::assemble::{assemble_dataset, AssembleConfig};
use deepmap_core::receptive_field::{receptive_field, sequence_receptive_fields, Slot};
use deepmap_graph::{Graph, GraphBuilder};
use deepmap_kernels::{vertex_feature_maps, FeatureKind};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..(2 * n));
        let labels = proptest::collection::vec(1u32..4, n);
        (Just(n), edges, labels).prop_map(|(n, edges, labels)| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                if u != v {
                    b.add_edge(u, v).expect("in range");
                }
            }
            b.set_labels(&labels).expect("count");
            b.build().expect("valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Vertex sequences are permutations of the vertex set for every
    /// ordering.
    #[test]
    fn sequences_are_permutations(g in arb_graph(12), seed in 0u64..20) {
        for ordering in [
            VertexOrdering::EigenvectorCentrality,
            VertexOrdering::DegreeCentrality,
            VertexOrdering::Random(seed),
        ] {
            let seq = vertex_sequence(&g, ordering);
            let mut sorted = seq.order.clone();
            sorted.sort_unstable();
            let expected: Vec<u32> = (0..g.n_vertices() as u32).collect();
            prop_assert_eq!(sorted, expected, "{:?}", ordering);
        }
    }

    /// A receptive field always has exactly `r` slots, starts with its
    /// root, contains no duplicate vertices, and puts dummies only at the
    /// tail.
    #[test]
    fn receptive_field_shape(g in arb_graph(12), r in 1usize..8) {
        let seq = vertex_sequence(&g, VertexOrdering::EigenvectorCentrality);
        for v in g.vertices() {
            let field = receptive_field(&g, v, r, &seq.score, None);
            prop_assert_eq!(field.len(), r);
            prop_assert_eq!(field[0], Slot::Vertex(v));
            let mut seen = std::collections::HashSet::new();
            let mut dummy_started = false;
            for slot in &field {
                match slot {
                    Slot::Vertex(w) => {
                        prop_assert!(!dummy_started, "vertex after dummy");
                        prop_assert!(seen.insert(*w), "duplicate vertex {w}");
                    }
                    Slot::Dummy => dummy_started = true,
                }
            }
        }
    }

    /// Field members are always within the BFS component of the root.
    #[test]
    fn receptive_field_stays_in_component(g in arb_graph(12), r in 2usize..6) {
        let seq = vertex_sequence(&g, VertexOrdering::EigenvectorCentrality);
        let comps = deepmap_graph::components::connected_components(&g);
        for v in g.vertices() {
            let field = receptive_field(&g, v, r, &seq.score, None);
            for slot in &field {
                if let Slot::Vertex(w) = slot {
                    prop_assert_eq!(
                        comps.component[*w as usize],
                        comps.component[v as usize]
                    );
                }
            }
        }
    }

    /// Sequence receptive fields pad to exactly `w × r` and the padding is
    /// all-dummy.
    #[test]
    fn sequence_fields_pad(g in arb_graph(8), extra in 0usize..5, r in 1usize..5) {
        let seq = vertex_sequence(&g, VertexOrdering::EigenvectorCentrality);
        let w = g.n_vertices() + extra;
        let fields = sequence_receptive_fields(&g, &seq.order, &seq.score, w, r, None);
        prop_assert_eq!(fields.len(), w);
        for f in fields.iter().skip(g.n_vertices()) {
            prop_assert!(f.iter().all(|s| *s == Slot::Dummy));
        }
    }

    /// Assembled tensors have the advertised shape and only the first
    /// `n_vertices × r` rows can be non-zero.
    #[test]
    fn assembly_shape_and_padding(graphs in proptest::collection::vec(arb_graph(8), 1..4), r in 1usize..5) {
        let features = vertex_feature_maps(&graphs, FeatureKind::WlSubtree { iterations: 1 }, 0);
        let config = AssembleConfig { r, ..Default::default() };
        let ds = assemble_dataset(&graphs, &features, &config);
        let w = graphs.iter().map(|g| g.n_vertices()).max().unwrap().max(1);
        prop_assert_eq!(ds.w, w);
        for (g, input) in graphs.iter().zip(&ds.inputs) {
            prop_assert_eq!(input.shape(), (w * r, ds.m));
            for pos in g.n_vertices()..w {
                for slot in 0..r {
                    prop_assert!(input.row(pos * r + slot).iter().all(|&v| v == 0.0));
                }
            }
        }
    }

    /// Assembly is deterministic.
    #[test]
    fn assembly_deterministic(g in arb_graph(8)) {
        let graphs = vec![g];
        let features = vertex_feature_maps(&graphs, FeatureKind::ShortestPath, 0);
        let config = AssembleConfig::default();
        let a = assemble_dataset(&graphs, &features, &config);
        let b = assemble_dataset(&graphs, &features, &config);
        prop_assert_eq!(a.inputs, b.inputs);
    }
}
