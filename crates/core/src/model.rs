//! The Fig. 4 convolutional architecture.

use deepmap_nn::layers::{Conv1D, Dense, Dropout, Flatten, ReLU, SumPool};
use deepmap_nn::Sequential;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Graph-level readout after the convolutions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Readout {
    /// Summation layer (paper Eq. 7): permutation- and size-invariant.
    Sum,
    /// Concatenation of all deep vertex maps (paper §6 alternative):
    /// preserves the local distribution but fixes the graph size to `w`.
    Concat,
}

/// Architecture hyper-parameters. Defaults are the paper's (§4.2):
/// filters 32/16/8, dense 128, dropout 0.5.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Vertex feature-map dimension `m` (input channels).
    pub m: usize,
    /// Receptive-field size `r` (kernel and stride of conv 1).
    pub r: usize,
    /// Aligned sequence length `w` (needed for the concat readout).
    pub w: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Filters of the three conv layers.
    pub filters: [usize; 3],
    /// Units of the dense layer.
    pub dense_units: usize,
    /// Dropout rate before the classifier.
    pub dropout: f64,
    /// Readout between convs and dense head.
    pub readout: Readout,
    /// Seed for weight initialisation and dropout masks.
    pub seed: u64,
}

impl ModelConfig {
    /// The paper's configuration for a dataset with the given dimensions.
    pub fn paper(m: usize, r: usize, w: usize, n_classes: usize, seed: u64) -> Self {
        ModelConfig {
            m,
            r,
            w,
            n_classes,
            filters: [32, 16, 8],
            dense_units: 128,
            dropout: 0.5,
            readout: Readout::Sum,
            seed,
        }
    }
}

/// Builds the DeepMap CNN:
/// `Conv(k=r, s=r, f₀) → ReLU → Conv(1,1,f₁) → ReLU → Conv(1,1,f₂) → ReLU →
/// readout → Dense(d) → ReLU → Dropout → Dense(classes)`.
///
/// The softmax lives in the loss (`deepmap-nn::loss`), as usual for fused
/// softmax/cross-entropy training.
pub fn build_deepmap_model(config: &ModelConfig) -> Sequential {
    assert!(config.m >= 1 && config.r >= 1 && config.n_classes >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let [f0, f1, f2] = config.filters;
    let mut model = Sequential::new()
        .push(Box::new(Conv1D::new(
            config.m, f0, config.r, config.r, &mut rng,
        )))
        .push(Box::new(ReLU::new()))
        .push(Box::new(Conv1D::new(f0, f1, 1, 1, &mut rng)))
        .push(Box::new(ReLU::new()))
        .push(Box::new(Conv1D::new(f1, f2, 1, 1, &mut rng)))
        .push(Box::new(ReLU::new()));
    let head_in = match config.readout {
        Readout::Sum => {
            model.add(Box::new(SumPool::new()));
            f2
        }
        Readout::Concat => {
            model.add(Box::new(Flatten::new()));
            config.w * f2
        }
    };
    model
        .push(Box::new(Dense::new(head_in, config.dense_units, &mut rng)))
        .push(Box::new(ReLU::new()))
        .push(Box::new(Dropout::new(config.dropout, config.seed ^ 0x5eed)))
        .push(Box::new(Dense::new(
            config.dense_units,
            config.n_classes,
            &mut rng,
        )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_nn::layers::Mode;
    use deepmap_nn::Matrix;

    #[test]
    fn paper_architecture_shapes() {
        let config = ModelConfig::paper(7, 3, 5, 4, 1);
        let mut model = build_deepmap_model(&config);
        // Input: w*r = 15 positions × m = 7 channels.
        let x = Matrix::zeros(15, 7);
        let y = model.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (1, 4));
        assert_eq!(
            model.layer_names(),
            vec![
                "Conv1D", "ReLU", "Conv1D", "ReLU", "Conv1D", "ReLU", "SumPool", "Dense", "ReLU",
                "Dropout", "Dense"
            ]
        );
    }

    #[test]
    fn concat_readout_shapes() {
        let config = ModelConfig {
            readout: Readout::Concat,
            ..ModelConfig::paper(7, 3, 5, 2, 1)
        };
        let mut model = build_deepmap_model(&config);
        let x = Matrix::zeros(15, 7);
        let y = model.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (1, 2));
    }

    #[test]
    fn sum_readout_is_sequence_permutation_invariant_across_fields() {
        // Swapping whole receptive fields (blocks of r rows) must not change
        // the output under the Sum readout — Theorem 1's mechanism.
        let config = ModelConfig::paper(4, 2, 3, 2, 5);
        let mut model = build_deepmap_model(&config);
        let data: Vec<f32> = (0..24).map(|v| (v as f32).sin()).collect();
        let x = Matrix::from_vec(6, 4, data.clone());
        // Swap field 0 (rows 0..2) and field 2 (rows 4..6).
        let mut swapped = data.clone();
        for row in 0..2 {
            for col in 0..4 {
                swapped.swap(row * 4 + col, (row + 4) * 4 + col);
            }
        }
        let x_swapped = Matrix::from_vec(6, 4, swapped);
        let y1 = model.forward(&x, Mode::Eval);
        let y2 = model.forward(&x_swapped, Mode::Eval);
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn deterministic_construction() {
        let config = ModelConfig::paper(3, 2, 4, 2, 9);
        let mut m1 = build_deepmap_model(&config);
        let mut m2 = build_deepmap_model(&config);
        let x = Matrix::from_vec(8, 3, (0..24).map(|v| v as f32 * 0.1).collect());
        assert_eq!(m1.forward(&x, Mode::Eval), m2.forward(&x, Mode::Eval));
    }

    #[test]
    fn parameter_count_matches_formula() {
        let config = ModelConfig::paper(10, 4, 6, 3, 1);
        let model = build_deepmap_model(&config);
        let conv1 = 4 * 10 * 32 + 32;
        let conv2 = 32 * 16 + 16;
        let conv3 = 16 * 8 + 8;
        let dense1 = 8 * 128 + 128;
        let dense2 = 128 * 3 + 3;
        assert_eq!(
            model.n_parameters(),
            conv1 + conv2 + conv3 + dense1 + dense2
        );
    }
}
