//! End-to-end DeepMap pipeline (Algorithm 1).
//!
//! `graphs → vertex feature maps → alignment + receptive fields → tensors →
//! CNN training`. The pipeline prepares a dataset once and can then train
//! and evaluate on arbitrary index splits, which is what the 10-fold
//! cross-validation harness needs.

use crate::assemble::{assemble_dataset, AssembleConfig};
use crate::model::{build_deepmap_model, ModelConfig, Readout};
use crate::VertexOrdering;
use deepmap_graph::Graph;
use deepmap_kernels::{vertex_feature_maps, FeatureKind};
use deepmap_nn::train::{evaluate, fit, EpochStats, Sample, TrainConfig};
use deepmap_nn::Sequential;

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct DeepMapConfig {
    /// Substructure family for the vertex feature maps (GK / SP / WL).
    pub kind: FeatureKind,
    /// Receptive-field size `r`.
    pub r: usize,
    /// Vertex ordering (paper: eigenvector centrality).
    pub ordering: VertexOrdering,
    /// BFS fallback bound for receptive fields (`None` = paper behaviour).
    pub max_hops: Option<usize>,
    /// Graph readout (paper: summation).
    pub readout: Readout,
    /// Optional top-K truncation of the feature dimension, for datasets
    /// whose vertex maps are very high-dimensional (paper §6 / Table 5
    /// discussion).
    pub max_feature_dim: Option<usize>,
    /// L2-normalise vertex feature rows (see
    /// [`crate::assemble::AssembleConfig::normalize`]).
    pub normalize: bool,
    /// Trainer hyper-parameters (paper defaults in
    /// [`TrainConfig::default`]).
    pub train: TrainConfig,
    /// Master seed for feature sampling and model initialisation.
    pub seed: u64,
}

impl DeepMapConfig {
    /// The paper's configuration for a given feature kind.
    pub fn paper(kind: FeatureKind) -> Self {
        DeepMapConfig {
            kind,
            r: 5,
            ordering: VertexOrdering::EigenvectorCentrality,
            max_hops: None,
            readout: Readout::Sum,
            max_feature_dim: None,
            normalize: true,
            train: TrainConfig::default(),
            seed: 0,
        }
    }
}

/// A dataset that has been pushed through feature extraction and tensor
/// assembly and is ready for training on any index split.
pub struct PreparedDataset {
    /// One labelled sample per graph, aligned with the input order.
    pub samples: Vec<Sample>,
    /// Aligned sequence length `w`.
    pub w: usize,
    /// Feature dimension `m` after optional truncation.
    pub m: usize,
    /// Number of classes (max label + 1).
    pub n_classes: usize,
}

/// Result of training on one split.
pub struct FitResult {
    /// The trained model.
    pub model: Sequential,
    /// Per-epoch statistics, including held-out accuracy per epoch.
    pub history: Vec<EpochStats>,
    /// Final held-out accuracy.
    pub test_accuracy: f64,
    /// Best held-out accuracy over all epochs (the paper's epoch-selection
    /// protocol picks the best epoch on CV average; per-fold curves are
    /// combined by the harness).
    pub best_test_accuracy: f64,
}

/// The DeepMap classifier (paper Algorithm 1).
pub struct DeepMap {
    config: DeepMapConfig,
}

impl DeepMap {
    /// New pipeline with the given configuration.
    pub fn new(config: DeepMapConfig) -> Self {
        DeepMap { config }
    }

    /// Pipeline configuration.
    pub fn config(&self) -> &DeepMapConfig {
        &self.config
    }

    /// Runs feature extraction and tensor assembly (Algorithm 1 lines
    /// 1–20).
    ///
    /// # Panics
    /// Panics when `graphs.len() != labels.len()` or the dataset is empty.
    pub fn prepare(&self, graphs: &[Graph], labels: &[usize]) -> PreparedDataset {
        assert_eq!(graphs.len(), labels.len(), "graph/label count mismatch");
        assert!(!graphs.is_empty(), "empty dataset");
        let mut features = vertex_feature_maps(graphs, self.config.kind, self.config.seed);
        if let Some(k) = self.config.max_feature_dim {
            features = features.truncate_top_k(k);
        }
        let assembled = assemble_dataset(
            graphs,
            &features,
            &AssembleConfig {
                r: self.config.r,
                ordering: self.config.ordering,
                max_hops: self.config.max_hops,
                normalize: self.config.normalize,
            },
        );
        let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        let samples = assembled
            .inputs
            .into_iter()
            .zip(labels)
            .map(|(input, &label)| Sample { input, label })
            .collect();
        PreparedDataset {
            samples,
            w: assembled.w,
            m: assembled.m,
            n_classes,
        }
    }

    /// Builds the CNN for a prepared dataset.
    pub fn build_model(&self, prepared: &PreparedDataset) -> Sequential {
        build_deepmap_model(&ModelConfig {
            m: prepared.m,
            r: self.config.r,
            w: prepared.w,
            n_classes: prepared.n_classes,
            filters: [32, 16, 8],
            dense_units: 128,
            dropout: 0.5,
            readout: self.config.readout,
            seed: self.config.seed,
        })
    }

    /// Trains on `train_idx` and evaluates on `test_idx` (Algorithm 1 line
    /// 21 for one CV fold).
    pub fn fit_split(
        &self,
        prepared: &PreparedDataset,
        train_idx: &[usize],
        test_idx: &[usize],
    ) -> FitResult {
        let train_samples: Vec<Sample> = train_idx
            .iter()
            .map(|&i| prepared.samples[i].clone())
            .collect();
        let test_samples: Vec<Sample> = test_idx
            .iter()
            .map(|&i| prepared.samples[i].clone())
            .collect();
        let mut model = self.build_model(prepared);
        let history = fit(
            &mut model,
            &train_samples,
            Some(&test_samples),
            &self.config.train,
        );
        let test_accuracy = evaluate(&mut model, &test_samples);
        let best_test_accuracy = history
            .iter()
            .filter_map(|e| e.eval_accuracy)
            .fold(0.0f64, f64::max);
        FitResult {
            model,
            history,
            test_accuracy,
            best_test_accuracy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_graph::generators::{complete_graph, cycle_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Cycles (class 0) vs near-cliques (class 1): trivially separable by
    /// any of the three feature families.
    fn toy_dataset(n_per_class: usize) -> (Vec<Graph>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class {
            graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
            labels.push(0);
            graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
            labels.push(1);
        }
        (graphs, labels)
    }

    fn quick_config(kind: FeatureKind) -> DeepMapConfig {
        DeepMapConfig {
            r: 3,
            train: TrainConfig {
                epochs: 15,
                batch_size: 8,
                learning_rate: 0.01,
                seed: 1,
            },
            ..DeepMapConfig::paper(kind)
        }
    }

    #[test]
    fn prepare_shapes() {
        let (graphs, labels) = toy_dataset(4);
        let dm = DeepMap::new(quick_config(FeatureKind::WlSubtree { iterations: 2 }));
        let prepared = dm.prepare(&graphs, &labels);
        assert_eq!(prepared.samples.len(), 8);
        assert_eq!(prepared.n_classes, 2);
        let w = graphs.iter().map(|g| g.n_vertices()).max().unwrap();
        assert_eq!(prepared.w, w);
        for s in &prepared.samples {
            assert_eq!(s.input.shape(), (w * 3, prepared.m));
        }
    }

    #[test]
    fn learns_cycles_vs_cliques_with_wl() {
        let (graphs, labels) = toy_dataset(8);
        let dm = DeepMap::new(quick_config(FeatureKind::WlSubtree { iterations: 2 }));
        let prepared = dm.prepare(&graphs, &labels);
        // Train on the first 12, test on the last 4.
        let train_idx: Vec<usize> = (0..12).collect();
        let test_idx: Vec<usize> = (12..16).collect();
        let result = dm.fit_split(&prepared, &train_idx, &test_idx);
        assert!(
            result.test_accuracy >= 0.75,
            "test accuracy {}",
            result.test_accuracy
        );
        assert_eq!(result.history.len(), 15);
    }

    #[test]
    fn learns_with_sp_features() {
        let (graphs, labels) = toy_dataset(6);
        let dm = DeepMap::new(quick_config(FeatureKind::ShortestPath));
        let prepared = dm.prepare(&graphs, &labels);
        let train_idx: Vec<usize> = (0..10).collect();
        let test_idx: Vec<usize> = (10..12).collect();
        let result = dm.fit_split(&prepared, &train_idx, &test_idx);
        assert!(result.test_accuracy >= 0.5);
    }

    #[test]
    fn feature_truncation_respected() {
        let (graphs, labels) = toy_dataset(4);
        let config = DeepMapConfig {
            max_feature_dim: Some(2),
            ..quick_config(FeatureKind::WlSubtree { iterations: 3 })
        };
        let dm = DeepMap::new(config);
        let prepared = dm.prepare(&graphs, &labels);
        assert!(prepared.m <= 2);
    }

    #[test]
    #[should_panic(expected = "graph/label count mismatch")]
    fn mismatched_labels_panic() {
        let (graphs, _) = toy_dataset(2);
        let dm = DeepMap::new(quick_config(FeatureKind::ShortestPath));
        dm.prepare(&graphs, &[0]);
    }
}
