//! End-to-end DeepMap pipeline (Algorithm 1).
//!
//! `graphs → vertex feature maps → alignment + receptive fields → tensors →
//! CNN training`. The pipeline prepares a dataset once and can then train
//! and evaluate on arbitrary index splits, which is what the 10-fold
//! cross-validation harness needs.
//!
//! Robustness: every entry point has a `try_*` variant returning
//! [`DeepMapError`] instead of panicking, and [`DeepMap::try_fit_split_with`]
//! recovers from diverging training runs (NaN/Inf loss, exploding
//! gradients) by retrying the fold with a halved learning rate and a
//! reseeded initialisation — bounded by [`RecoveryConfig::max_retries`].

use crate::assemble::{try_assemble_dataset, AssembleConfig};
use crate::error::{validate_contiguous_labels, DeepMapError};
use crate::frozen::FrozenPreprocessor;
use crate::model::{build_deepmap_model, ModelConfig, Readout};
use crate::VertexOrdering;
use deepmap_graph::Graph;
use deepmap_kernels::{vertex_feature_maps, FeatureKind, FrozenExtractor};
use deepmap_nn::train::{evaluate, try_fit, EpochStats, GuardConfig, Sample, TrainConfig};
use deepmap_nn::Sequential;

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct DeepMapConfig {
    /// Substructure family for the vertex feature maps (GK / SP / WL).
    pub kind: FeatureKind,
    /// Receptive-field size `r`.
    pub r: usize,
    /// Vertex ordering (paper: eigenvector centrality).
    pub ordering: VertexOrdering,
    /// BFS fallback bound for receptive fields (`None` = paper behaviour).
    pub max_hops: Option<usize>,
    /// Graph readout (paper: summation).
    pub readout: Readout,
    /// Optional top-K truncation of the feature dimension, for datasets
    /// whose vertex maps are very high-dimensional (paper §6 / Table 5
    /// discussion).
    pub max_feature_dim: Option<usize>,
    /// L2-normalise vertex feature rows (see
    /// [`crate::assemble::AssembleConfig::normalize`]).
    pub normalize: bool,
    /// Trainer hyper-parameters (paper defaults in
    /// [`TrainConfig::default`]).
    pub train: TrainConfig,
    /// Master seed for feature sampling and model initialisation.
    pub seed: u64,
}

impl DeepMapConfig {
    /// The paper's configuration for a given feature kind.
    pub fn paper(kind: FeatureKind) -> Self {
        DeepMapConfig {
            kind,
            r: 5,
            ordering: VertexOrdering::EigenvectorCentrality,
            max_hops: None,
            readout: Readout::Sum,
            max_feature_dim: None,
            normalize: true,
            train: TrainConfig::default(),
            seed: 0,
        }
    }
}

/// How [`DeepMap::try_fit_split_with`] recovers from diverging folds.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Maximum number of retries after the first failed attempt.
    pub max_retries: usize,
    /// Multiplier applied to the learning rate on every retry (the classic
    /// divergence mitigation: halve and try again).
    pub lr_backoff: f32,
    /// Divergence guards applied to every attempt. The fault-injection
    /// field, if set, only applies to the *first* attempt so tests can
    /// simulate a transient divergence that the retry recovers from.
    pub guard: GuardConfig,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            max_retries: 2,
            lr_backoff: 0.5,
            guard: GuardConfig::default(),
        }
    }
}

/// A dataset that has been pushed through feature extraction and tensor
/// assembly and is ready for training on any index split.
#[derive(Debug)]
pub struct PreparedDataset {
    /// One labelled sample per graph, aligned with the input order.
    pub samples: Vec<Sample>,
    /// Aligned sequence length `w`.
    pub w: usize,
    /// Feature dimension `m` after optional truncation.
    pub m: usize,
    /// Number of classes (max label + 1; labels are validated contiguous).
    pub n_classes: usize,
}

/// Result of training on one split.
#[derive(Debug)]
pub struct FitResult {
    /// The trained model.
    pub model: Sequential,
    /// Per-epoch statistics, including held-out accuracy per epoch.
    pub history: Vec<EpochStats>,
    /// Final held-out accuracy.
    pub test_accuracy: f64,
    /// Best held-out accuracy over all epochs (the paper's epoch-selection
    /// protocol picks the best epoch on CV average; per-fold curves are
    /// combined by the harness).
    pub best_test_accuracy: f64,
    /// Number of diverged attempts before this (successful) one. `0` means
    /// the first attempt converged.
    pub retries: usize,
    /// Human-readable description of each diverged attempt, in order.
    pub divergences: Vec<String>,
}

/// The DeepMap classifier (paper Algorithm 1).
pub struct DeepMap {
    config: DeepMapConfig,
}

impl DeepMap {
    /// New pipeline with the given configuration.
    pub fn new(config: DeepMapConfig) -> Self {
        DeepMap { config }
    }

    /// Pipeline configuration.
    pub fn config(&self) -> &DeepMapConfig {
        &self.config
    }

    /// Runs feature extraction and tensor assembly (Algorithm 1 lines
    /// 1–20).
    ///
    /// # Panics
    /// Panics when the inputs are invalid (count mismatch, empty dataset,
    /// non-contiguous labels). Use [`DeepMap::try_prepare`] for a fallible
    /// version.
    pub fn prepare(&self, graphs: &[Graph], labels: &[usize]) -> PreparedDataset {
        self.try_prepare(graphs, labels)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`DeepMap::prepare`]: validates that graph and label counts
    /// match, the dataset is non-empty, the receptive-field size is usable,
    /// and the class labels are a contiguous `0..n_classes` set (a gap
    /// would silently inflate the softmax head with dead classes).
    pub fn try_prepare(
        &self,
        graphs: &[Graph],
        labels: &[usize],
    ) -> Result<PreparedDataset, DeepMapError> {
        if graphs.len() != labels.len() {
            return Err(DeepMapError::LengthMismatch {
                graphs: graphs.len(),
                labels: labels.len(),
            });
        }
        if graphs.is_empty() {
            return Err(DeepMapError::EmptyDataset);
        }
        let n_classes = validate_contiguous_labels(labels)?;
        let _prepare = deepmap_obs::span("pipeline.prepare")
            .with_str("kernel", self.config.kind.name())
            .with_u64("graphs", graphs.len() as u64);
        let mut features = {
            let mut span = deepmap_obs::span("pipeline.feature_extraction")
                .with_str("kernel", self.config.kind.name());
            let features = vertex_feature_maps(graphs, self.config.kind, self.config.seed);
            span.record_u64("dim", features.dim as u64);
            features
        };
        if let Some(k) = self.config.max_feature_dim {
            let _span = deepmap_obs::span("pipeline.truncation")
                .with_u64("k", k as u64)
                .with_u64("dim_before", features.dim as u64);
            features = features.truncate_top_k(k);
        }
        let assembled = try_assemble_dataset(
            graphs,
            &features,
            &AssembleConfig {
                r: self.config.r,
                ordering: self.config.ordering,
                max_hops: self.config.max_hops,
                normalize: self.config.normalize,
            },
        )?;
        let samples = assembled
            .inputs
            .into_iter()
            .zip(labels)
            .map(|(input, &label)| Sample { input, label })
            .collect();
        Ok(PreparedDataset {
            samples,
            w: assembled.w,
            m: assembled.m,
            n_classes,
        })
    }

    /// [`DeepMap::try_prepare`] with a frozen feature vocabulary: in
    /// addition to the prepared training tensors, returns the
    /// [`FrozenPreprocessor`] that re-creates the exact tensor layout for
    /// single unseen graphs at serve time.
    ///
    /// The tensors differ from [`DeepMap::try_prepare`]'s in exactly one
    /// way: the feature dimension gains one trailing OOV column that is
    /// all-zero on every training graph (unseen substructures land there at
    /// serve time). For the graphlet kind the sampling RNG is additionally
    /// re-seeded per graph so serve-time embedding can replay it.
    pub fn try_prepare_frozen(
        &self,
        graphs: &[Graph],
        labels: &[usize],
    ) -> Result<(PreparedDataset, FrozenPreprocessor), DeepMapError> {
        if graphs.len() != labels.len() {
            return Err(DeepMapError::LengthMismatch {
                graphs: graphs.len(),
                labels: labels.len(),
            });
        }
        if graphs.is_empty() {
            return Err(DeepMapError::EmptyDataset);
        }
        let n_classes = validate_contiguous_labels(labels)?;
        let _prepare = deepmap_obs::span("pipeline.prepare")
            .with_str("kernel", self.config.kind.name())
            .with_str("mode", "frozen")
            .with_u64("graphs", graphs.len() as u64);
        let (mut features, mut extractor) = {
            let mut span = deepmap_obs::span("pipeline.feature_extraction")
                .with_str("kernel", self.config.kind.name());
            let (features, extractor) =
                FrozenExtractor::fit(graphs, self.config.kind, self.config.seed);
            span.record_u64("dim", features.dim as u64);
            (features, extractor)
        };
        if let Some(k) = self.config.max_feature_dim {
            let _span = deepmap_obs::span("pipeline.truncation")
                .with_u64("k", k as u64)
                .with_u64("dim_before", features.dim as u64);
            if let Some(mapping) = features.top_k_mapping(k) {
                features = features.apply_mapping(&mapping, k);
                extractor.truncate(&mapping, k);
            }
        }
        // Widen the tensors by the OOV bucket so the model has a (zero)
        // input column for serve-time unseen substructures.
        features.dim = extractor.dim();
        let assemble_cfg = AssembleConfig {
            r: self.config.r,
            ordering: self.config.ordering,
            max_hops: self.config.max_hops,
            normalize: self.config.normalize,
        };
        let assembled = try_assemble_dataset(graphs, &features, &assemble_cfg)?;
        let pre = FrozenPreprocessor::new(
            extractor,
            assembled.w,
            self.config.r,
            self.config.ordering,
            self.config.max_hops,
            self.config.normalize,
        );
        let samples = assembled
            .inputs
            .into_iter()
            .zip(labels)
            .map(|(input, &label)| Sample { input, label })
            .collect();
        Ok((
            PreparedDataset {
                samples,
                w: assembled.w,
                m: assembled.m,
                n_classes,
            },
            pre,
        ))
    }

    /// Builds the CNN for a prepared dataset.
    pub fn build_model(&self, prepared: &PreparedDataset) -> Sequential {
        self.build_model_seeded(prepared, self.config.seed)
    }

    /// The architecture the pipeline builds for a prepared dataset — the
    /// paper's Fig. 4 stack with its shape parameters filled in. Exposed so
    /// a serving bundle can record (and later rebuild) the exact model.
    pub fn model_config(&self, prepared: &PreparedDataset) -> ModelConfig {
        ModelConfig {
            m: prepared.m,
            r: self.config.r,
            w: prepared.w,
            n_classes: prepared.n_classes,
            filters: [32, 16, 8],
            dense_units: 128,
            dropout: 0.5,
            readout: self.config.readout,
            seed: self.config.seed,
        }
    }

    /// Builds the CNN with an explicit initialisation seed (used by the
    /// divergence-recovery retry loop to reseed the weights).
    fn build_model_seeded(&self, prepared: &PreparedDataset, seed: u64) -> Sequential {
        build_deepmap_model(&ModelConfig {
            seed,
            ..self.model_config(prepared)
        })
    }

    /// Trains on `train_idx` and evaluates on `test_idx` (Algorithm 1 line
    /// 21 for one CV fold).
    ///
    /// # Panics
    /// Panics on invalid splits or unrecoverable divergence. Use
    /// [`DeepMap::try_fit_split`] for a fallible version.
    pub fn fit_split(
        &self,
        prepared: &PreparedDataset,
        train_idx: &[usize],
        test_idx: &[usize],
    ) -> FitResult {
        self.try_fit_split(prepared, train_idx, test_idx)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`DeepMap::fit_split`] with the default
    /// [`RecoveryConfig`]: validates the splits, then trains with
    /// divergence guards, retrying a diverged fold up to twice with a
    /// halved learning rate and reseeded weights.
    pub fn try_fit_split(
        &self,
        prepared: &PreparedDataset,
        train_idx: &[usize],
        test_idx: &[usize],
    ) -> Result<FitResult, DeepMapError> {
        self.try_fit_split_with(prepared, train_idx, test_idx, &RecoveryConfig::default())
    }

    /// [`DeepMap::try_fit_split`] with an explicit recovery policy.
    ///
    /// Attempt 0 reproduces [`DeepMap::fit_split`]'s seeds bit-for-bit, so
    /// a run that never diverges is identical to the legacy behaviour.
    /// Each retry multiplies the learning rate by
    /// [`RecoveryConfig::lr_backoff`] and derives fresh model/shuffle
    /// seeds, which is the recovery the paper's long CV runs need: a NaN
    /// loss costs one fold attempt, not the whole table.
    pub fn try_fit_split_with(
        &self,
        prepared: &PreparedDataset,
        train_idx: &[usize],
        test_idx: &[usize],
        recovery: &RecoveryConfig,
    ) -> Result<FitResult, DeepMapError> {
        validate_split(train_idx, "train", prepared.samples.len())?;
        validate_split(test_idx, "test", prepared.samples.len())?;
        let train_samples: Vec<Sample> = train_idx
            .iter()
            .map(|&i| prepared.samples[i].clone())
            .collect();
        let test_samples: Vec<Sample> = test_idx
            .iter()
            .map(|&i| prepared.samples[i].clone())
            .collect();

        let mut divergences = Vec::new();
        let mut last_error = None;
        for attempt in 0..=recovery.max_retries {
            // Attempt 0 uses the configured seeds untouched; retries mix the
            // attempt number in so the reseeded init explores new weights.
            let model_seed = reseed(self.config.seed, attempt);
            let mut train_cfg = self.config.train;
            train_cfg.seed = reseed(self.config.train.seed, attempt);
            train_cfg.learning_rate =
                self.config.train.learning_rate * recovery.lr_backoff.powi(attempt as i32);
            let mut guard = recovery.guard;
            if attempt > 0 {
                // Injected faults model a transient first-attempt failure.
                guard.inject_nan_at_epoch = None;
            }
            let mut model = self.build_model_seeded(prepared, model_seed);
            match try_fit(
                &mut model,
                &train_samples,
                Some(&test_samples),
                &train_cfg,
                &guard,
            ) {
                Ok(history) => {
                    let test_accuracy = evaluate(&model, &test_samples)
                        .expect("test split validated non-empty");
                    let best_test_accuracy = history
                        .iter()
                        .filter_map(|e| e.eval_accuracy)
                        .fold(0.0f64, f64::max);
                    return Ok(FitResult {
                        model,
                        history,
                        test_accuracy,
                        best_test_accuracy,
                        retries: attempt,
                        divergences,
                    });
                }
                Err(e) => {
                    deepmap_obs::counter("train.divergence_retries").inc();
                    divergences.push(format!(
                        "attempt {attempt} (lr {:.3e}): {e}",
                        train_cfg.learning_rate
                    ));
                    last_error = Some(e);
                }
            }
        }
        let last = last_error.expect("at least one attempt ran");
        Err(DeepMapError::training_failed(
            recovery.max_retries + 1,
            &last,
        ))
    }
}

/// Mixes `attempt` into `seed`; attempt 0 is the identity so un-retried
/// runs keep their legacy seeds (and therefore legacy results).
fn reseed(seed: u64, attempt: usize) -> u64 {
    if attempt == 0 {
        seed
    } else {
        seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

fn validate_split(idx: &[usize], split: &'static str, len: usize) -> Result<(), DeepMapError> {
    if idx.is_empty() {
        return Err(DeepMapError::EmptySplit { split });
    }
    if let Some(&bad) = idx.iter().find(|&&i| i >= len) {
        return Err(DeepMapError::IndexOutOfRange {
            split,
            index: bad,
            len,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_graph::generators::{complete_graph, cycle_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Cycles (class 0) vs near-cliques (class 1): trivially separable by
    /// any of the three feature families.
    fn toy_dataset(n_per_class: usize) -> (Vec<Graph>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class {
            graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
            labels.push(0);
            graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
            labels.push(1);
        }
        (graphs, labels)
    }

    fn quick_config(kind: FeatureKind) -> DeepMapConfig {
        DeepMapConfig {
            r: 3,
            train: TrainConfig {
                epochs: 15,
                batch_size: 8,
                learning_rate: 0.01,
                seed: 1,
            },
            ..DeepMapConfig::paper(kind)
        }
    }

    #[test]
    fn prepare_shapes() {
        let (graphs, labels) = toy_dataset(4);
        let dm = DeepMap::new(quick_config(FeatureKind::WlSubtree { iterations: 2 }));
        let prepared = dm.prepare(&graphs, &labels);
        assert_eq!(prepared.samples.len(), 8);
        assert_eq!(prepared.n_classes, 2);
        let w = graphs.iter().map(|g| g.n_vertices()).max().unwrap();
        assert_eq!(prepared.w, w);
        for s in &prepared.samples {
            assert_eq!(s.input.shape(), (w * 3, prepared.m));
        }
    }

    #[test]
    fn learns_cycles_vs_cliques_with_wl() {
        let (graphs, labels) = toy_dataset(8);
        let dm = DeepMap::new(quick_config(FeatureKind::WlSubtree { iterations: 2 }));
        let prepared = dm.prepare(&graphs, &labels);
        // Train on the first 12, test on the last 4.
        let train_idx: Vec<usize> = (0..12).collect();
        let test_idx: Vec<usize> = (12..16).collect();
        let result = dm.fit_split(&prepared, &train_idx, &test_idx);
        assert!(
            result.test_accuracy >= 0.75,
            "test accuracy {}",
            result.test_accuracy
        );
        assert_eq!(result.history.len(), 15);
        assert_eq!(result.retries, 0);
        assert!(result.divergences.is_empty());
    }

    #[test]
    fn learns_with_sp_features() {
        let (graphs, labels) = toy_dataset(6);
        let dm = DeepMap::new(quick_config(FeatureKind::ShortestPath));
        let prepared = dm.prepare(&graphs, &labels);
        let train_idx: Vec<usize> = (0..10).collect();
        let test_idx: Vec<usize> = (10..12).collect();
        let result = dm.fit_split(&prepared, &train_idx, &test_idx);
        assert!(result.test_accuracy >= 0.5);
    }

    #[test]
    fn feature_truncation_respected() {
        let (graphs, labels) = toy_dataset(4);
        let config = DeepMapConfig {
            max_feature_dim: Some(2),
            ..quick_config(FeatureKind::WlSubtree { iterations: 3 })
        };
        let dm = DeepMap::new(config);
        let prepared = dm.prepare(&graphs, &labels);
        assert!(prepared.m <= 2);
    }

    #[test]
    fn frozen_prepare_adds_only_a_zero_oov_column() {
        // For the deterministic kinds the frozen tensors must equal the
        // legacy ones except for one trailing all-zero OOV column — the
        // guarantee that lets a served model reproduce training behaviour.
        let (graphs, labels) = toy_dataset(3);
        for kind in [
            FeatureKind::WlSubtree { iterations: 2 },
            FeatureKind::ShortestPath,
        ] {
            let dm = DeepMap::new(quick_config(kind));
            let legacy = dm.prepare(&graphs, &labels);
            let (frozen, pre) = dm.try_prepare_frozen(&graphs, &labels).unwrap();
            assert_eq!(frozen.m, legacy.m + 1, "{kind:?}");
            assert_eq!(frozen.w, legacy.w);
            assert_eq!(pre.m(), frozen.m);
            for (a, b) in legacy.samples.iter().zip(&frozen.samples) {
                let (rows, m) = a.input.shape();
                assert_eq!(b.input.shape(), (rows, m + 1));
                for row in 0..rows {
                    assert_eq!(&b.input.row(row)[..m], a.input.row(row), "{kind:?}");
                    assert_eq!(b.input.row(row)[m], 0.0, "OOV column all-zero in training");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "graph/label count mismatch")]
    fn mismatched_labels_panic() {
        let (graphs, _) = toy_dataset(2);
        let dm = DeepMap::new(quick_config(FeatureKind::ShortestPath));
        dm.prepare(&graphs, &[0]);
    }

    #[test]
    fn try_prepare_rejects_bad_inputs() {
        let (graphs, labels) = toy_dataset(2);
        let dm = DeepMap::new(quick_config(FeatureKind::ShortestPath));
        // Count mismatch.
        let err = dm.try_prepare(&graphs, &labels[..1]).unwrap_err();
        assert!(matches!(err, DeepMapError::LengthMismatch { .. }), "{err}");
        // Empty dataset.
        let err = dm.try_prepare(&[], &[]).unwrap_err();
        assert_eq!(err, DeepMapError::EmptyDataset);
        // Valid inputs succeed.
        assert!(dm.try_prepare(&graphs, &labels).is_ok());
    }

    #[test]
    fn non_contiguous_labels_rejected() {
        let (graphs, _) = toy_dataset(2);
        // Labels {0, 2} skip class 1: the softmax head would have a dead
        // output the old code silently trained.
        let gapped = vec![0, 2, 0, 2];
        let dm = DeepMap::new(quick_config(FeatureKind::ShortestPath));
        let err = dm.try_prepare(&graphs, &gapped).unwrap_err();
        assert_eq!(
            err,
            DeepMapError::NonContiguousLabels {
                missing_class: 1,
                n_classes: 3
            }
        );
    }

    #[test]
    fn try_fit_split_rejects_bad_splits() {
        let (graphs, labels) = toy_dataset(3);
        let dm = DeepMap::new(quick_config(FeatureKind::ShortestPath));
        let prepared = dm.prepare(&graphs, &labels);
        let err = dm.try_fit_split(&prepared, &[], &[0]).unwrap_err();
        assert_eq!(err, DeepMapError::EmptySplit { split: "train" });
        let err = dm.try_fit_split(&prepared, &[0, 1], &[]).unwrap_err();
        assert_eq!(err, DeepMapError::EmptySplit { split: "test" });
        let err = dm.try_fit_split(&prepared, &[0, 99], &[1]).unwrap_err();
        assert!(
            matches!(err, DeepMapError::IndexOutOfRange { index: 99, .. }),
            "{err}"
        );
    }

    #[test]
    fn injected_divergence_retries_with_halved_lr() {
        // The NaN-poisoned-fold smoke test: attempt 0 "diverges" at epoch 0
        // via fault injection, the retry reseeds, halves the LR, and
        // completes. This is the recovery path a real mid-table NaN takes.
        let (graphs, labels) = toy_dataset(4);
        let dm = DeepMap::new(quick_config(FeatureKind::WlSubtree { iterations: 1 }));
        let prepared = dm.prepare(&graphs, &labels);
        let train_idx: Vec<usize> = (0..6).collect();
        let test_idx: Vec<usize> = (6..8).collect();
        let recovery = RecoveryConfig {
            guard: GuardConfig {
                inject_nan_at_epoch: Some(0),
                ..GuardConfig::default()
            },
            ..RecoveryConfig::default()
        };
        let result = dm
            .try_fit_split_with(&prepared, &train_idx, &test_idx, &recovery)
            .expect("retry must recover from the injected fault");
        assert_eq!(result.retries, 1);
        assert_eq!(result.divergences.len(), 1);
        assert!(
            result.divergences[0].contains("non-finite loss"),
            "{:?}",
            result.divergences
        );
        // The successful attempt ran at half the configured learning rate.
        let base_lr = dm.config().train.learning_rate;
        assert!(
            result.history[0].learning_rate <= base_lr * 0.5 + 1e-9,
            "retry lr {} vs base {}",
            result.history[0].learning_rate,
            base_lr
        );
        assert_eq!(result.history.len(), dm.config().train.epochs);
    }

    #[test]
    fn unrecoverable_divergence_reports_attempts() {
        let (graphs, labels) = toy_dataset(3);
        let dm = DeepMap::new(quick_config(FeatureKind::ShortestPath));
        let prepared = dm.prepare(&graphs, &labels);
        // A gradient-norm bound of ~0 fails every attempt.
        let recovery = RecoveryConfig {
            max_retries: 1,
            guard: GuardConfig {
                max_grad_norm: 1e-12,
                ..GuardConfig::default()
            },
            ..RecoveryConfig::default()
        };
        let err = dm
            .try_fit_split_with(&prepared, &[0, 1, 2, 3], &[4, 5], &recovery)
            .unwrap_err();
        match err {
            DeepMapError::TrainingFailed {
                attempts,
                last_error,
            } => {
                assert_eq!(attempts, 2);
                assert!(last_error.contains("exploding gradient"), "{last_error}");
            }
            other => panic!("expected TrainingFailed, got {other}"),
        }
    }

    #[test]
    fn attempt_zero_matches_legacy_fit_split() {
        // The recovery wrapper must be bit-identical to the old fit_split
        // when nothing diverges, or committed experiment tables would
        // shift under a pure robustness PR.
        let (graphs, labels) = toy_dataset(3);
        let dm = DeepMap::new(quick_config(FeatureKind::ShortestPath));
        let prepared = dm.prepare(&graphs, &labels);
        let train_idx: Vec<usize> = (0..4).collect();
        let test_idx: Vec<usize> = (4..6).collect();
        let a = dm.fit_split(&prepared, &train_idx, &test_idx);
        let b = dm.try_fit_split(&prepared, &train_idx, &test_idx).unwrap();
        assert_eq!(a.history.len(), b.history.len());
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.loss, y.loss);
            assert_eq!(x.eval_accuracy, y.eval_accuracy);
        }
        assert_eq!(a.test_accuracy, b.test_accuracy);
    }
}
