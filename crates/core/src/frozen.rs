//! Frozen preprocessing for single-graph inference.
//!
//! [`DeepMap::try_prepare_frozen`](crate::DeepMap::try_prepare_frozen)
//! fits the feature vocabulary and records everything tensor assembly
//! decided from the corpus — the aligned width `w`, the receptive-field
//! size `r`, the ordering, the normalisation flag — into a
//! [`FrozenPreprocessor`]. At serve time [`FrozenPreprocessor::embed_one`]
//! turns one unseen graph into the exact `(w·r × m)` tensor layout the
//! model was trained on, with unseen substructures routed to the OOV
//! feature bucket (see [`deepmap_kernels::frozen`]).

use crate::alignment::VertexOrdering;
use crate::assemble::{assemble_graph, AssembleConfig};
use deepmap_graph::Graph;
use deepmap_kernels::FrozenExtractor;
use deepmap_nn::Matrix;

/// A frozen feature extractor plus the tensor-assembly parameters captured
/// at fit time: everything needed to map one graph to a CNN input.
#[derive(Debug, Clone)]
pub struct FrozenPreprocessor {
    extractor: FrozenExtractor,
    w: usize,
    r: usize,
    ordering: VertexOrdering,
    max_hops: Option<usize>,
    normalize: bool,
}

impl FrozenPreprocessor {
    /// Bundles a fitted extractor with the assembly parameters.
    pub fn new(
        extractor: FrozenExtractor,
        w: usize,
        r: usize,
        ordering: VertexOrdering,
        max_hops: Option<usize>,
        normalize: bool,
    ) -> Self {
        FrozenPreprocessor {
            extractor,
            w,
            r,
            ordering,
            max_hops,
            normalize,
        }
    }

    /// The frozen feature extractor.
    pub fn extractor(&self) -> &FrozenExtractor {
        &self.extractor
    }

    /// The sorted vertex-label alphabet the vocabulary was fitted on, when
    /// the feature family records one (see
    /// [`FrozenExtractor::label_alphabet`]).
    pub fn label_alphabet(&self) -> Option<Vec<u32>> {
        self.extractor.label_alphabet()
    }

    /// Aligned sequence length the model was trained with.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Receptive-field size.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Serve-time feature dimension `m` (fitted columns + OOV bucket).
    pub fn m(&self) -> usize {
        self.extractor.dim()
    }

    /// Vertex ordering used for alignment.
    pub fn ordering(&self) -> VertexOrdering {
        self.ordering
    }

    /// BFS fallback bound for receptive fields.
    pub fn max_hops(&self) -> Option<usize> {
        self.max_hops
    }

    /// Whether vertex feature rows are L2-normalised.
    pub fn normalize(&self) -> bool {
        self.normalize
    }

    /// Embeds a single (possibly unseen) graph into the training tensor
    /// layout: a `(w·r × m)` matrix ready for the CNN.
    ///
    /// Graphs with more than `w` vertices keep their `w` highest-ranked
    /// vertices (the aligned sequence is truncated, exactly as a
    /// longer-than-`w` graph would have been had it appeared at fit time).
    pub fn embed_one(&self, graph: &Graph) -> Matrix {
        let features = self.extractor.embed_one(graph);
        assemble_graph(
            graph,
            &features,
            self.w,
            self.m(),
            &AssembleConfig {
                r: self.r,
                ordering: self.ordering,
                max_hops: self.max_hops,
                normalize: self.normalize,
            },
        )
    }

    /// Serialises to a little-endian binary blob (the serving bundle's
    /// container supplies magic/versioning).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let (tag, seed) = self.ordering.to_tag();
        out.push(tag);
        out.extend_from_slice(&seed.to_le_bytes());
        out.extend_from_slice(&(self.w as u64).to_le_bytes());
        out.extend_from_slice(&(self.r as u64).to_le_bytes());
        match self.max_hops {
            None => out.push(0),
            Some(h) => {
                out.push(1);
                out.extend_from_slice(&(h as u64).to_le_bytes());
            }
        }
        out.push(self.normalize as u8);
        let blob = self.extractor.to_bytes();
        out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
        out.extend_from_slice(&blob);
        out
    }

    /// Deserialises a blob produced by
    /// [`to_bytes`](FrozenPreprocessor::to_bytes); rejects malformed input
    /// (short reads, bad flags, trailing bytes) with a description.
    pub fn from_bytes(data: &[u8]) -> Result<FrozenPreprocessor, String> {
        let mut r = Reader { data, pos: 0 };
        let tag = r.u8()?;
        let seed = r.u64()?;
        let ordering = VertexOrdering::from_tag(tag, seed)?;
        let w = r.u64()? as usize;
        let field_r = r.u64()? as usize;
        let max_hops = match r.u8()? {
            0 => None,
            1 => Some(r.u64()? as usize),
            other => return Err(format!("bad max-hops flag {other}")),
        };
        let normalize = match r.u8()? {
            0 => false,
            1 => true,
            other => return Err(format!("bad normalize flag {other}")),
        };
        let blob_len = r.u64()? as usize;
        let blob = r.take(blob_len)?;
        let extractor = FrozenExtractor::from_bytes(blob)?;
        if r.remaining() != 0 {
            return Err(format!(
                "{} trailing bytes after frozen preprocessor",
                r.remaining()
            ));
        }
        let r = field_r;
        Ok(FrozenPreprocessor {
            extractor,
            w,
            r,
            ordering,
            max_hops,
            normalize,
        })
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.data.len() {
            return Err(format!(
                "unexpected end of frozen preprocessor at byte {}",
                self.pos
            ));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DeepMap, DeepMapConfig};
    use deepmap_graph::generators::{complete_graph, cycle_graph};
    use deepmap_kernels::FeatureKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset() -> (Vec<Graph>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..4 {
            graphs.push(cycle_graph(6 + i % 3, 0, &mut rng));
            labels.push(0);
            graphs.push(complete_graph(5 + i % 3, 0, &mut rng));
            labels.push(1);
        }
        (graphs, labels)
    }

    fn all_kinds() -> Vec<FeatureKind> {
        vec![
            FeatureKind::Graphlet {
                size: 3,
                samples: 10,
            },
            FeatureKind::ShortestPath,
            FeatureKind::WlSubtree { iterations: 2 },
        ]
    }

    #[test]
    fn embed_one_matches_prepared_inputs_for_every_kind() {
        let (graphs, labels) = toy_dataset();
        for kind in all_kinds() {
            let dm = DeepMap::new(DeepMapConfig {
                r: 3,
                ..DeepMapConfig::paper(kind)
            });
            let (prepared, pre) = dm.try_prepare_frozen(&graphs, &labels).unwrap();
            assert_eq!(pre.m(), prepared.m, "{kind:?}");
            assert_eq!(pre.w(), prepared.w, "{kind:?}");
            for (gi, graph) in graphs.iter().enumerate() {
                assert_eq!(
                    pre.embed_one(graph),
                    prepared.samples[gi].input,
                    "{kind:?}: graph {gi}"
                );
            }
        }
    }

    #[test]
    fn embed_one_handles_graphs_wider_than_w() {
        let (graphs, labels) = toy_dataset();
        let dm = DeepMap::new(DeepMapConfig {
            r: 3,
            ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 1 })
        });
        let (prepared, pre) = dm.try_prepare_frozen(&graphs, &labels).unwrap();
        // A 20-vertex cycle: wider than any fitted graph.
        let mut rng = StdRng::seed_from_u64(3);
        let big = cycle_graph(20, 0, &mut rng);
        let input = pre.embed_one(&big);
        assert_eq!(input.shape(), (prepared.w * 3, prepared.m));
    }

    #[test]
    fn preprocessor_bytes_roundtrip() {
        let (graphs, labels) = toy_dataset();
        let dm = DeepMap::new(DeepMapConfig {
            r: 3,
            max_feature_dim: Some(8),
            ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
        });
        let (_, pre) = dm.try_prepare_frozen(&graphs, &labels).unwrap();
        let blob = pre.to_bytes();
        let restored = FrozenPreprocessor::from_bytes(&blob).expect("roundtrip");
        assert_eq!(restored.m(), pre.m());
        assert_eq!(restored.w(), pre.w());
        assert_eq!(restored.r(), pre.r());
        for graph in &graphs {
            assert_eq!(restored.embed_one(graph), pre.embed_one(graph));
        }
        // Malformed blobs are rejected.
        let mut long = blob.clone();
        long.push(0);
        assert!(FrozenPreprocessor::from_bytes(&long)
            .unwrap_err()
            .contains("trailing"));
        assert!(FrozenPreprocessor::from_bytes(&blob[..blob.len() - 2]).is_err());
        assert!(FrozenPreprocessor::from_bytes(&[]).is_err());
    }
}
