//! Vertex alignment across graphs.
//!
//! CNNs need spatially ordered inputs; DeepMap imposes that order by
//! sorting each graph's vertices on **eigenvector centrality** (paper §4.1).
//! Degree and random orderings are provided for the ablation benchmarks
//! (DESIGN.md §4, choice 1).

use deepmap_graph::centrality::{
    degree_centrality, eigenvector_centrality, rank_by_score_desc, PowerIterationOptions,
};
use deepmap_graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How vertices are ranked into the aligned vertex sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VertexOrdering {
    /// Eigenvector centrality, descending (the paper's choice).
    EigenvectorCentrality,
    /// Degree centrality, descending (cheaper ablation).
    DegreeCentrality,
    /// A seeded random permutation (ablation control: destroys alignment).
    Random(
        /// Seed for the permutation.
        u64,
    ),
}

impl VertexOrdering {
    /// Serialises to a `(tag, seed)` pair for the frozen-preprocessor binary
    /// format; the seed is only meaningful for [`VertexOrdering::Random`].
    pub fn to_tag(self) -> (u8, u64) {
        match self {
            VertexOrdering::EigenvectorCentrality => (0, 0),
            VertexOrdering::DegreeCentrality => (1, 0),
            VertexOrdering::Random(seed) => (2, seed),
        }
    }

    /// Inverse of [`VertexOrdering::to_tag`].
    pub fn from_tag(tag: u8, seed: u64) -> Result<VertexOrdering, String> {
        match tag {
            0 => Ok(VertexOrdering::EigenvectorCentrality),
            1 => Ok(VertexOrdering::DegreeCentrality),
            2 => Ok(VertexOrdering::Random(seed)),
            other => Err(format!("unknown vertex-ordering tag {other}")),
        }
    }
}

/// The aligned vertex sequence of one graph, plus the scores used to build
/// it (the receptive-field construction re-uses the scores).
#[derive(Debug, Clone)]
pub struct VertexSequence {
    /// Vertex ids in sequence order (highest score first).
    pub order: Vec<VertexId>,
    /// Per-vertex score indexed by vertex id (not by sequence position).
    pub score: Vec<f64>,
}

impl VertexSequence {
    /// Number of real (non-dummy) vertices.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Builds the aligned vertex sequence for `graph` under `ordering`
/// (Algorithm 1, line 11).
pub fn vertex_sequence(graph: &Graph, ordering: VertexOrdering) -> VertexSequence {
    match ordering {
        VertexOrdering::EigenvectorCentrality => {
            let score = eigenvector_centrality(graph, PowerIterationOptions::default());
            let order = rank_by_score_desc(graph, &score);
            VertexSequence { order, score }
        }
        VertexOrdering::DegreeCentrality => {
            let score = degree_centrality(graph);
            let order = rank_by_score_desc(graph, &score);
            VertexSequence { order, score }
        }
        VertexOrdering::Random(seed) => {
            let mut order: Vec<VertexId> = graph.vertices().collect();
            let mut rng = StdRng::seed_from_u64(seed ^ graph.n_vertices() as u64);
            order.shuffle(&mut rng);
            // Scores encode the random rank so receptive fields stay
            // consistent with the sequence.
            let n = graph.n_vertices();
            let mut score = vec![0.0; n];
            for (pos, &v) in order.iter().enumerate() {
                score[v as usize] = (n - pos) as f64;
            }
            VertexSequence { order, score }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_graph::builder::graph_from_edges;

    fn star() -> Graph {
        graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)], None).unwrap()
    }

    #[test]
    fn eigenvector_puts_hub_first() {
        let seq = vertex_sequence(&star(), VertexOrdering::EigenvectorCentrality);
        assert_eq!(seq.order[0], 0);
        assert_eq!(seq.len(), 5);
    }

    #[test]
    fn degree_ordering_matches_on_star() {
        let seq = vertex_sequence(&star(), VertexOrdering::DegreeCentrality);
        assert_eq!(seq.order[0], 0);
        // Leaves tie → ascending id.
        assert_eq!(&seq.order[1..], &[1, 2, 3, 4]);
    }

    #[test]
    fn random_is_a_seeded_permutation() {
        let a = vertex_sequence(&star(), VertexOrdering::Random(7));
        let b = vertex_sequence(&star(), VertexOrdering::Random(7));
        let c = vertex_sequence(&star(), VertexOrdering::Random(8));
        assert_eq!(a.order, b.order);
        assert!(a.order != c.order || a.order.len() <= 1);
        let mut sorted = a.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_scores_decrease_along_order() {
        let seq = vertex_sequence(&star(), VertexOrdering::Random(3));
        for w in seq.order.windows(2) {
            assert!(seq.score[w[0] as usize] > seq.score[w[1] as usize]);
        }
    }

    #[test]
    fn alignment_is_stable_across_isomorphic_copies() {
        // Same star with relabeled vertex ids: hub is id 2.
        let g2 = graph_from_edges(5, &[(2, 0), (2, 1), (2, 3), (2, 4)], None).unwrap();
        let seq = vertex_sequence(&g2, VertexOrdering::EigenvectorCentrality);
        assert_eq!(seq.order[0], 2, "hub leads regardless of its id");
    }

    #[test]
    fn ordering_tag_roundtrip() {
        for ordering in [
            VertexOrdering::EigenvectorCentrality,
            VertexOrdering::DegreeCentrality,
            VertexOrdering::Random(42),
        ] {
            let (tag, seed) = ordering.to_tag();
            assert_eq!(VertexOrdering::from_tag(tag, seed), Ok(ordering));
        }
        assert!(VertexOrdering::from_tag(9, 0).is_err());
    }

    #[test]
    fn empty_graph() {
        let g = graph_from_edges(0, &[], None).unwrap();
        let seq = vertex_sequence(&g, VertexOrdering::EigenvectorCentrality);
        assert!(seq.is_empty());
    }
}
