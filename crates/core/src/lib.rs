//! DeepMap: deep graph representations via CNNs on vertex feature maps.
//!
//! This is the paper's primary contribution. A graph becomes a CNN input in
//! three steps:
//!
//! 1. **Alignment** ([`alignment`]): vertices are sorted by eigenvector
//!    centrality into a *vertex sequence*; sequences shorter than the
//!    dataset maximum `w` are padded with dummy vertices (paper §4.1,
//!    Algorithm 1 lines 11–13).
//! 2. **Receptive fields** ([`receptive_field`]): each vertex gets an
//!    `r`-vertex receptive field via centrality-guided BFS — the top `r−1`
//!    one-hop neighbours by centrality, falling back to two-hop,
//!    three-hop, … neighbours until `r` vertices are collected, everything
//!    sorted by descending centrality (Algorithm 1 lines 15–19).
//! 3. **Assembly** ([`assemble`]): the receptive fields are concatenated
//!    into a `(w·r × m)` tensor of vertex feature maps (`m` from
//!    `deepmap-kernels`); dummy positions carry zero vectors so they do not
//!    contribute to the convolution.
//!
//! The CNN itself ([`model`]) is the paper's Fig. 4 architecture: three 1-D
//! convolutions (the first with kernel = stride = `r`, then two 1×1 convs,
//! 32/16/8 filters, ReLU), a summation layer (Eq. 7), a 128-unit dense
//! layer with ReLU, dropout 0.5, and a softmax classifier.
//! [`pipeline`] glues everything into a train/evaluate API used by the
//! cross-validation harness, and [`embedding`] extracts the deep vertex
//! feature maps as vertex embeddings (paper §7).

#![deny(missing_docs)]

pub mod alignment;
pub mod assemble;
pub mod embedding;
pub mod error;
pub mod frozen;
pub mod model;
pub mod pipeline;
pub mod receptive_field;

pub use alignment::VertexOrdering;
pub use error::DeepMapError;
pub use frozen::FrozenPreprocessor;
pub use model::{build_deepmap_model, ModelConfig, Readout};
pub use pipeline::{DeepMap, DeepMapConfig, FitResult, PreparedDataset, RecoveryConfig};
