//! Receptive-field construction (paper §4.1, Algorithm 1 lines 15–19).
//!
//! The receptive field of vertex `v` has exactly `r` slots: `v` itself plus
//! the top `r − 1` neighbours by centrality score. If the one-hop
//! neighbourhood is too small, two-hop, three-hop, … neighbours fill the
//! remainder (BFS expansion); if the whole component is smaller than `r`,
//! dummy slots pad the tail. Selected neighbours are sorted by descending
//! centrality, with `v` in front — matching the reference implementation's
//! `X(v), X(v_σ1), …` layout where the root leads its field.

use deepmap_graph::bfs::bfs_layers;
use deepmap_graph::{Graph, VertexId};

/// One receptive-field slot: a real vertex or a zero-padded dummy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// A real vertex of the graph.
    Vertex(VertexId),
    /// Padding; contributes a zero feature vector.
    Dummy,
}

/// The receptive field of `v`: exactly `r` slots, root first, then selected
/// neighbours in descending score order, then dummies.
///
/// `score` is indexed by vertex id (use the scores from
/// [`crate::alignment::vertex_sequence`] so the field agrees with the
/// sequence ordering).
///
/// `max_hops` bounds the BFS fallback expansion; `None` explores the whole
/// component (the paper's behaviour). `Some(1)` is the one-hop-only
/// ablation.
///
/// # Panics
/// Panics when `r == 0` or `v` is out of range.
pub fn receptive_field(
    graph: &Graph,
    v: VertexId,
    r: usize,
    score: &[f64],
    max_hops: Option<usize>,
) -> Vec<Slot> {
    assert!(r >= 1, "receptive field size must be at least 1");
    assert!((v as usize) < graph.n_vertices(), "vertex out of range");
    let mut slots = Vec::with_capacity(r);
    slots.push(Slot::Vertex(v));
    if r == 1 {
        return slots;
    }
    let mut needed = r - 1;
    // BFS layers: layer 0 is [v]; expand until enough vertices or exhausted.
    let layers = bfs_layers(graph, v, max_hops);
    for layer in layers.iter().skip(1) {
        if needed == 0 {
            break;
        }
        let mut ranked: Vec<VertexId> = layer.clone();
        ranked.sort_by(|&a, &b| {
            score[b as usize]
                .partial_cmp(&score[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| graph.label(a).cmp(&graph.label(b)))
                .then_with(|| a.cmp(&b))
        });
        for w in ranked.into_iter().take(needed) {
            slots.push(Slot::Vertex(w));
            needed -= 1;
        }
    }
    // Component exhausted: pad with dummies.
    slots.resize(r, Slot::Dummy);
    slots
}

/// Receptive fields for every position of an aligned vertex sequence of
/// length `w` (real vertices from `order`, then all-dummy fields for the
/// padding positions).
pub fn sequence_receptive_fields(
    graph: &Graph,
    order: &[VertexId],
    score: &[f64],
    w: usize,
    r: usize,
    max_hops: Option<usize>,
) -> Vec<Vec<Slot>> {
    let mut fields = Vec::with_capacity(w);
    for &v in order.iter().take(w) {
        fields.push(receptive_field(graph, v, r, score, max_hops));
    }
    while fields.len() < w {
        fields.push(vec![Slot::Dummy; r]);
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::{vertex_sequence, VertexOrdering};
    use deepmap_graph::builder::graph_from_edges;

    /// Star with centre 0; leaves 1..=4.
    fn star() -> (deepmap_graph::Graph, Vec<f64>) {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)], None).unwrap();
        let seq = vertex_sequence(&g, VertexOrdering::EigenvectorCentrality);
        (g, seq.score)
    }

    #[test]
    fn root_leads_the_field() {
        let (g, score) = star();
        let field = receptive_field(&g, 3, 3, &score, None);
        assert_eq!(field[0], Slot::Vertex(3));
        assert_eq!(field.len(), 3);
    }

    #[test]
    fn hub_selected_before_leaves() {
        let (g, score) = star();
        // From leaf 1 with r=3: root 1, then hub 0 (1-hop), then a 2-hop leaf.
        let field = receptive_field(&g, 1, 3, &score, None);
        assert_eq!(field[0], Slot::Vertex(1));
        assert_eq!(field[1], Slot::Vertex(0));
        assert!(matches!(field[2], Slot::Vertex(v) if v >= 2));
    }

    #[test]
    fn one_hop_truncation_pads_with_dummies() {
        let (g, score) = star();
        // Leaf 1 has a single 1-hop neighbour; with max_hops=1 and r=4 the
        // field is [1, 0, dummy, dummy].
        let field = receptive_field(&g, 1, 4, &score, Some(1));
        assert_eq!(field[0], Slot::Vertex(1));
        assert_eq!(field[1], Slot::Vertex(0));
        assert_eq!(field[2], Slot::Dummy);
        assert_eq!(field[3], Slot::Dummy);
    }

    #[test]
    fn small_component_pads() {
        let g = graph_from_edges(4, &[(0, 1)], None).unwrap();
        let score = vec![0.5, 0.5, 0.0, 0.0];
        let field = receptive_field(&g, 0, 4, &score, None);
        assert_eq!(field[0], Slot::Vertex(0));
        assert_eq!(field[1], Slot::Vertex(1));
        assert_eq!(field[2], Slot::Dummy);
        assert_eq!(field[3], Slot::Dummy);
    }

    #[test]
    fn r_equal_one_is_just_the_root() {
        let (g, score) = star();
        assert_eq!(
            receptive_field(&g, 2, 1, &score, None),
            vec![Slot::Vertex(2)]
        );
    }

    #[test]
    fn top_neighbours_selected_by_score() {
        // Path 0-1-2-3-4: from vertex 2 with r=3, the two middle-adjacent
        // vertices 1 and 3 (higher centrality than endpoints) are chosen.
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)], None).unwrap();
        let seq = vertex_sequence(&g, VertexOrdering::EigenvectorCentrality);
        let field = receptive_field(&g, 2, 3, &seq.score, None);
        let members: Vec<_> = field
            .iter()
            .filter_map(|s| match s {
                Slot::Vertex(v) => Some(*v),
                Slot::Dummy => None,
            })
            .collect();
        assert_eq!(members[0], 2);
        assert!(members.contains(&1) && members.contains(&3));
    }

    #[test]
    fn sequence_fields_pad_to_w() {
        let (g, score) = star();
        let seq = vertex_sequence(&g, VertexOrdering::EigenvectorCentrality);
        let fields = sequence_receptive_fields(&g, &seq.order, &score, 8, 3, None);
        assert_eq!(fields.len(), 8);
        for f in &fields[5..] {
            assert!(f.iter().all(|s| *s == Slot::Dummy));
        }
        for f in &fields[..5] {
            assert_eq!(f.len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "receptive field size must be at least 1")]
    fn zero_r_panics() {
        let (g, score) = star();
        receptive_field(&g, 0, 0, &score, None);
    }
}
