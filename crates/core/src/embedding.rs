//! Deep vertex embeddings.
//!
//! The paper's conclusion: "The learned deep feature map of each vertex can
//! also be considered as vertex embedding and used for vertex
//! classification." The deep vertex feature map is the output of the third
//! convolution for that vertex's receptive field — the `(w × f₂)` tensor
//! right before the summation readout. This module reads it out of a
//! trained model.

use crate::model::Readout;
use crate::pipeline::{DeepMap, PreparedDataset};
use deepmap_nn::layers::Mode;
use deepmap_nn::{Matrix, Sequential};

/// Number of layers up to and including the third conv's ReLU in the
/// Fig. 4 stack (`Conv, ReLU, Conv, ReLU, Conv, ReLU`). The layer at this
/// index is the SumPool readout; the serving path splits batched forward
/// passes here because the conv stack is the only part whose rows can be
/// batched across graphs.
pub const CONV_STACK_LAYERS: usize = 6;

/// Deep vertex embeddings for one prepared graph: row `i` is the embedding
/// of the `i`-th vertex of the aligned sequence (padding rows included, as
/// all-dummy fields still pass through the convolution biases — callers
/// truncate to the real vertex count).
///
/// # Panics
/// Panics if `model` is not a DeepMap architecture built by
/// [`DeepMap::build_model`] (layer count too small).
pub fn vertex_embeddings(model: &mut Sequential, input: &Matrix) -> Matrix {
    assert!(
        model.n_layers() > CONV_STACK_LAYERS,
        "model too shallow to be a DeepMap CNN"
    );
    model.forward_prefix(input, CONV_STACK_LAYERS, Mode::Eval)
}

/// Embeddings for every graph of a prepared dataset, truncated to each
/// graph's real vertex count.
///
/// `n_vertices[i]` must be graph `i`'s vertex count (the assembly pads all
/// inputs to the dataset-wide `w`).
pub fn dataset_embeddings(
    pipeline: &DeepMap,
    model: &mut Sequential,
    prepared: &PreparedDataset,
    n_vertices: &[usize],
) -> Vec<Matrix> {
    assert_eq!(prepared.samples.len(), n_vertices.len());
    assert_eq!(
        pipeline.config().readout,
        Readout::Sum,
        "vertex embeddings are defined for the summation architecture"
    );
    prepared
        .samples
        .iter()
        .zip(n_vertices)
        .map(|(sample, &n)| {
            let full = vertex_embeddings(model, &sample.input);
            let rows = n.min(full.rows());
            let mut out = Matrix::zeros(rows, full.cols());
            for r in 0..rows {
                out.row_mut(r).copy_from_slice(full.row(r));
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DeepMapConfig;
    use deepmap_graph::generators::{complete_graph, cycle_graph};
    use deepmap_kernels::FeatureKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (DeepMap, PreparedDataset, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(1);
        let graphs = vec![cycle_graph(6, 0, &mut rng), complete_graph(4, 0, &mut rng)];
        let graphs: Vec<_> = graphs
            .into_iter()
            .map(|g| {
                let labels: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
                g.with_labels(labels).unwrap()
            })
            .collect();
        let labels = vec![0, 1];
        let sizes: Vec<usize> = graphs.iter().map(|g| g.n_vertices()).collect();
        let pipeline = DeepMap::new(DeepMapConfig {
            r: 3,
            ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
        });
        let prepared = pipeline.prepare(&graphs, &labels);
        (pipeline, prepared, sizes)
    }

    #[test]
    fn embedding_shapes() {
        let (pipeline, prepared, sizes) = setup();
        let mut model = pipeline.build_model(&prepared);
        let embs = dataset_embeddings(&pipeline, &mut model, &prepared, &sizes);
        assert_eq!(embs.len(), 2);
        assert_eq!(embs[0].shape(), (6, 8), "f2 = 8 channels per vertex");
        assert_eq!(embs[1].shape(), (4, 8));
    }

    #[test]
    fn embedding_sum_feeds_the_readout() {
        // The model's pooled representation equals the sum of the vertex
        // embeddings over the *whole padded sequence* (Eq. 7 inside the
        // network).
        let (pipeline, prepared, _) = setup();
        let mut model = pipeline.build_model(&prepared);
        let input = &prepared.samples[0].input;
        let per_vertex = vertex_embeddings(&mut model, input);
        let pooled = model.forward_prefix(input, 7, Mode::Eval); // + SumPool
        let manual = per_vertex.sum_rows();
        for (a, b) in pooled.as_slice().iter().zip(manual.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn structurally_identical_vertices_share_embeddings() {
        // All vertices of an unlabeled cycle are structurally identical:
        // same WL maps, same receptive-field content ⇒ same embedding.
        let (pipeline, prepared, sizes) = setup();
        let mut model = pipeline.build_model(&prepared);
        let embs = dataset_embeddings(&pipeline, &mut model, &prepared, &sizes);
        let cyc = &embs[0];
        for v in 1..cyc.rows() {
            for c in 0..cyc.cols() {
                assert!((cyc.get(0, c) - cyc.get(v, c)).abs() < 1e-5);
            }
        }
    }
}
