//! Typed errors for the DeepMap pipeline.
//!
//! The seed implementation panicked on bad shapes, empty datasets, and
//! diverging training runs — acceptable for a demo, fatal for a harness
//! that must survive a 10-fold × 15-dataset × 8-method table run. Every
//! fallible pipeline entry point (`try_prepare`, `try_fit_split`,
//! `try_assemble_dataset`) returns this enum instead; the panicking
//! wrappers remain for callers that validated their inputs already.

use deepmap_nn::train::TrainError;
use std::fmt;

/// Everything that can go wrong preparing or fitting a DeepMap pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum DeepMapError {
    /// The dataset had no graphs.
    EmptyDataset,
    /// `graphs.len() != labels.len()`.
    LengthMismatch {
        /// Number of graphs supplied.
        graphs: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// `graphs.len() != feature_maps.len()` during tensor assembly.
    FeatureCountMismatch {
        /// Number of graphs supplied.
        graphs: usize,
        /// Number of per-graph feature maps supplied.
        feature_maps: usize,
    },
    /// Class ids have gaps: `n_classes` is inferred as `max label + 1`, so
    /// a label set like `{0, 2}` would silently inflate the softmax head
    /// with a class no sample can ever take.
    NonContiguousLabels {
        /// The smallest class id in `0..n_classes` with no samples.
        missing_class: usize,
        /// `max label + 1`.
        n_classes: usize,
    },
    /// A configuration value was unusable (e.g. `r == 0`).
    InvalidConfig(
        /// What was wrong.
        String,
    ),
    /// A train/test split was empty.
    EmptySplit {
        /// Which split (`"train"` or `"test"`).
        split: &'static str,
    },
    /// A split index referenced a sample outside the prepared dataset.
    IndexOutOfRange {
        /// Which split (`"train"` or `"test"`).
        split: &'static str,
        /// The offending index.
        index: usize,
        /// Number of prepared samples.
        len: usize,
    },
    /// Training diverged on every attempt, retries included.
    TrainingFailed {
        /// How many attempts were made (1 + retries).
        attempts: usize,
        /// The last attempt's [`TrainError`], rendered.
        last_error: String,
    },
}

impl fmt::Display for DeepMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeepMapError::EmptyDataset => write!(f, "empty dataset"),
            DeepMapError::LengthMismatch { graphs, labels } => write!(
                f,
                "graph/label count mismatch: {graphs} graphs vs {labels} labels"
            ),
            DeepMapError::FeatureCountMismatch {
                graphs,
                feature_maps,
            } => write!(
                f,
                "graph/feature count mismatch: {graphs} graphs vs {feature_maps} feature maps"
            ),
            DeepMapError::NonContiguousLabels {
                missing_class,
                n_classes,
            } => write!(
                f,
                "non-contiguous class labels: class {missing_class} has no samples but the \
                 maximum label implies {n_classes} classes"
            ),
            DeepMapError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DeepMapError::EmptySplit { split } => write!(f, "{split} split is empty"),
            DeepMapError::IndexOutOfRange { split, index, len } => write!(
                f,
                "{split} index {index} out of range for {len} prepared samples"
            ),
            DeepMapError::TrainingFailed {
                attempts,
                last_error,
            } => write!(
                f,
                "training failed after {attempts} attempt(s): {last_error}"
            ),
        }
    }
}

impl std::error::Error for DeepMapError {}

impl DeepMapError {
    /// Wraps the last [`TrainError`] of an exhausted retry loop.
    pub fn training_failed(attempts: usize, last: &TrainError) -> Self {
        DeepMapError::TrainingFailed {
            attempts,
            last_error: last.to_string(),
        }
    }
}

/// Validates that `labels` form a contiguous `0..n_classes` set and returns
/// `n_classes`.
///
/// Gap detection is exact: every class in `0..=max` must have at least one
/// sample. The caller guarantees `labels` is non-empty.
pub fn validate_contiguous_labels(labels: &[usize]) -> Result<usize, DeepMapError> {
    let max = labels.iter().copied().max().unwrap_or(0);
    let n_classes = max + 1;
    let mut present = vec![false; n_classes];
    for &l in labels {
        present[l] = true;
    }
    if let Some(missing_class) = present.iter().position(|&p| !p) {
        return Err(DeepMapError::NonContiguousLabels {
            missing_class,
            n_classes,
        });
    }
    Ok(n_classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_labels_accepted() {
        assert_eq!(validate_contiguous_labels(&[0, 1, 2, 1, 0]), Ok(3));
        assert_eq!(validate_contiguous_labels(&[0, 0, 0]), Ok(1));
    }

    #[test]
    fn gapped_labels_rejected() {
        let err = validate_contiguous_labels(&[0, 2, 2]).unwrap_err();
        assert_eq!(
            err,
            DeepMapError::NonContiguousLabels {
                missing_class: 1,
                n_classes: 3
            }
        );
        assert!(err.to_string().contains("class 1"));
    }

    #[test]
    fn display_keeps_legacy_panic_messages() {
        // `DeepMap::prepare` panics with these Display strings; downstream
        // `should_panic(expected = ...)` tests match on the prefixes.
        assert!(DeepMapError::LengthMismatch {
            graphs: 2,
            labels: 1
        }
        .to_string()
        .contains("graph/label count mismatch"));
        assert_eq!(DeepMapError::EmptyDataset.to_string(), "empty dataset");
        assert!(DeepMapError::FeatureCountMismatch {
            graphs: 1,
            feature_maps: 2
        }
        .to_string()
        .contains("graph/feature count mismatch"));
    }
}
