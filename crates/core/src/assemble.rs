//! Tensor assembly: vertex sequences + receptive fields → CNN inputs.

use crate::alignment::{vertex_sequence, VertexOrdering};
use crate::error::DeepMapError;
use crate::receptive_field::{sequence_receptive_fields, Slot};
use deepmap_graph::Graph;
use deepmap_kernels::feature_map::DatasetFeatureMaps;
use deepmap_nn::Matrix;

/// Assembly options shared by the whole dataset.
#[derive(Debug, Clone, Copy)]
pub struct AssembleConfig {
    /// Receptive-field size `r`.
    pub r: usize,
    /// Vertex ordering used for alignment and neighbour ranking.
    pub ordering: VertexOrdering,
    /// BFS fallback bound for receptive fields (`None` = whole component,
    /// the paper's behaviour).
    pub max_hops: Option<usize>,
    /// L2-normalise each vertex feature row. The flat kernels are compared
    /// after *cosine normalisation* of their Gram matrix, which is exactly
    /// a per-graph L2 normalisation of the feature map; giving the CNN the
    /// same treatment per vertex keeps raw substructure counts (which grow
    /// with graph size) from saturating the first convolution.
    pub normalize: bool,
}

impl Default for AssembleConfig {
    fn default() -> Self {
        AssembleConfig {
            r: 5,
            ordering: VertexOrdering::EigenvectorCentrality,
            max_hops: None,
            normalize: true,
        }
    }
}

/// The assembled dataset: one `(w·r × m)` tensor per graph.
#[derive(Debug, Clone)]
pub struct AssembledDataset {
    /// Per-graph CNN input tensors.
    pub inputs: Vec<Matrix>,
    /// Aligned sequence length `w` (max vertex count over the dataset).
    pub w: usize,
    /// Receptive-field size `r`.
    pub r: usize,
    /// Feature dimension `m`.
    pub m: usize,
}

/// Assembles the CNN input tensor for one graph (Algorithm 1 lines 10–20).
///
/// `features.maps[graph_index]` supplies `φ(v)`; rows for dummy slots are
/// zero so padding never contributes to the convolution.
pub fn assemble_graph(
    graph: &Graph,
    vertex_features: &[deepmap_kernels::SparseVec],
    w: usize,
    m: usize,
    config: &AssembleConfig,
) -> Matrix {
    assert_eq!(
        vertex_features.len(),
        graph.n_vertices(),
        "feature map count must match vertex count"
    );
    let seq = vertex_sequence(graph, config.ordering);
    let fields =
        sequence_receptive_fields(graph, &seq.order, &seq.score, w, config.r, config.max_hops);
    write_tensor(vertex_features, &fields, w, m, config)
}

/// Fills the `(w·r × m)` tensor from resolved receptive fields (Algorithm 1
/// lines 14–20). Rows for dummy slots stay zero.
fn write_tensor(
    vertex_features: &[deepmap_kernels::SparseVec],
    fields: &[Vec<Slot>],
    w: usize,
    m: usize,
    config: &AssembleConfig,
) -> Matrix {
    let mut input = Matrix::zeros(w * config.r, m);
    for (pos, field) in fields.iter().enumerate() {
        for (slot_idx, slot) in field.iter().enumerate() {
            if let Slot::Vertex(v) = slot {
                let row = input.row_mut(pos * config.r + slot_idx);
                vertex_features[*v as usize].write_dense(row);
                if config.normalize {
                    let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
                    if norm > 0.0 {
                        row.iter_mut().for_each(|x| *x /= norm);
                    }
                }
            }
        }
    }
    input
}

/// Assembles the whole dataset; `w` is the maximum vertex count (Algorithm 1
/// line 8).
///
/// # Panics
/// Panics when `graphs.len() != features.maps.len()`. Use
/// [`try_assemble_dataset`] for a fallible version that also validates the
/// configuration.
pub fn assemble_dataset(
    graphs: &[Graph],
    features: &DatasetFeatureMaps,
    config: &AssembleConfig,
) -> AssembledDataset {
    assert_eq!(
        graphs.len(),
        features.n_graphs(),
        "graph/feature count mismatch"
    );
    assemble_dataset_unchecked(graphs, features, config)
}

/// Validating variant of [`assemble_dataset`]: rejects empty datasets,
/// graph/feature-map count mismatches, and `r == 0` with a typed error
/// instead of panicking or producing degenerate tensors.
pub fn try_assemble_dataset(
    graphs: &[Graph],
    features: &DatasetFeatureMaps,
    config: &AssembleConfig,
) -> Result<AssembledDataset, DeepMapError> {
    if graphs.is_empty() {
        return Err(DeepMapError::EmptyDataset);
    }
    if graphs.len() != features.n_graphs() {
        return Err(DeepMapError::FeatureCountMismatch {
            graphs: graphs.len(),
            feature_maps: features.n_graphs(),
        });
    }
    if config.r == 0 {
        return Err(DeepMapError::InvalidConfig(
            "receptive-field size r must be at least 1".to_string(),
        ));
    }
    Ok(assemble_dataset_unchecked(graphs, features, config))
}

/// The aligned sequence length `w` for a dataset: the maximum vertex count,
/// floored at 1 (Algorithm 1 line 8). Exposed so the frozen serving path
/// records the width the model was trained with.
pub fn aligned_width(graphs: &[Graph]) -> usize {
    graphs
        .iter()
        .map(|g| g.n_vertices())
        .max()
        .unwrap_or(0)
        .max(1)
}

fn assemble_dataset_unchecked(
    graphs: &[Graph],
    features: &DatasetFeatureMaps,
    config: &AssembleConfig,
) -> AssembledDataset {
    let w = aligned_width(graphs);
    let m = features.dim.max(1);
    let n = graphs.len() as u64;
    // The three dataset-level stages run under their own spans so a trace
    // (or the stage summary) attributes time to alignment vs BFS receptive
    // fields vs the tensor write, matching the paper's Table 5 breakdown.
    // Each stage is a pure per-graph function, so it fans out over the
    // shared pool; results come back in graph order, keeping the assembled
    // tensors bit-identical at any thread count.
    let sequences: Vec<_> = {
        let _span = deepmap_obs::span("pipeline.alignment").with_u64("graphs", n);
        deepmap_par::par_map_indexed(graphs, |_, g| vertex_sequence(g, config.ordering))
    };
    let fields: Vec<_> = {
        let _span = deepmap_obs::span("pipeline.receptive_field")
            .with_u64("graphs", n)
            .with_u64("r", config.r as u64);
        deepmap_par::par_map_indexed(graphs, |i, g| {
            let seq = &sequences[i];
            sequence_receptive_fields(g, &seq.order, &seq.score, w, config.r, config.max_hops)
        })
    };
    let inputs = {
        let _span = deepmap_obs::span("pipeline.assemble")
            .with_u64("graphs", n)
            .with_u64("w", w as u64)
            .with_u64("m", m as u64);
        deepmap_par::par_map_indexed(&features.maps, |i, f| {
            write_tensor(f, &fields[i], w, m, config)
        })
    };
    deepmap_obs::counter("pipeline.graphs_embedded").add(n);
    AssembledDataset {
        inputs,
        w,
        r: config.r,
        m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmap_graph::builder::graph_from_edges;
    use deepmap_kernels::{vertex_feature_maps, FeatureKind};

    fn two_graphs() -> Vec<Graph> {
        vec![
            // Star on 4 vertices.
            graph_from_edges(4, &[(0, 1), (0, 2), (0, 3)], Some(&[1, 2, 2, 2])).unwrap(),
            // Edge on 2 vertices.
            graph_from_edges(2, &[(0, 1)], Some(&[1, 2])).unwrap(),
        ]
    }

    #[test]
    fn dataset_shapes() {
        let graphs = two_graphs();
        let features = vertex_feature_maps(&graphs, FeatureKind::WlSubtree { iterations: 1 }, 0);
        let config = AssembleConfig {
            r: 3,
            ..Default::default()
        };
        let ds = assemble_dataset(&graphs, &features, &config);
        assert_eq!(ds.w, 4);
        assert_eq!(ds.m, features.dim);
        for input in &ds.inputs {
            assert_eq!(input.shape(), (4 * 3, features.dim));
        }
    }

    #[test]
    fn padding_rows_are_zero() {
        let graphs = two_graphs();
        let features = vertex_feature_maps(&graphs, FeatureKind::WlSubtree { iterations: 1 }, 0);
        let config = AssembleConfig {
            r: 3,
            ..Default::default()
        };
        let ds = assemble_dataset(&graphs, &features, &config);
        // Graph 1 has 2 vertices; sequence positions 2 and 3 are dummies.
        let input = &ds.inputs[1];
        for pos in 2..4 {
            for slot in 0..3 {
                assert!(input.row(pos * 3 + slot).iter().all(|&v| v == 0.0));
            }
        }
        // Real positions have non-zero roots (WL maps are never empty).
        assert!(input.row(0).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn first_row_is_highest_centrality_vertex() {
        let graphs = two_graphs();
        let features = vertex_feature_maps(&graphs, FeatureKind::WlSubtree { iterations: 1 }, 0);
        let config = AssembleConfig {
            r: 2,
            normalize: false,
            ..Default::default()
        };
        let ds = assemble_dataset(&graphs, &features, &config);
        // Graph 0: hub is vertex 0 — its feature map should be the first row.
        let mut expect = vec![0.0f32; features.dim];
        features.maps[0][0].write_dense(&mut expect);
        assert_eq!(ds.inputs[0].row(0), &expect[..]);
        // With normalisation on, the same row appears L2-normalised.
        let normalized = assemble_dataset(
            &graphs,
            &features,
            &AssembleConfig {
                r: 2,
                ..Default::default()
            },
        );
        let norm: f32 = normalized.inputs[0]
            .row(0)
            .iter()
            .map(|x| x * x)
            .sum::<f32>()
            .sqrt();
        assert!((norm - 1.0).abs() < 1e-5, "row norm {norm}");
    }

    #[test]
    fn assemble_deterministic() {
        let graphs = two_graphs();
        let features = vertex_feature_maps(&graphs, FeatureKind::ShortestPath, 0);
        let config = AssembleConfig::default();
        let a = assemble_dataset(&graphs, &features, &config);
        let b = assemble_dataset(&graphs, &features, &config);
        assert_eq!(a.inputs[0], b.inputs[0]);
        assert_eq!(a.inputs[1], b.inputs[1]);
    }

    #[test]
    fn try_assemble_rejects_bad_inputs() {
        let graphs = two_graphs();
        let features = vertex_feature_maps(&graphs, FeatureKind::ShortestPath, 0);
        // Count mismatch.
        let err =
            try_assemble_dataset(&graphs[..1], &features, &AssembleConfig::default()).unwrap_err();
        assert!(
            matches!(err, DeepMapError::FeatureCountMismatch { .. }),
            "{err}"
        );
        // r == 0.
        let err = try_assemble_dataset(
            &graphs,
            &features,
            &AssembleConfig {
                r: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, DeepMapError::InvalidConfig(_)), "{err}");
        // Empty dataset.
        let empty_maps = vertex_feature_maps(&[], FeatureKind::ShortestPath, 0);
        let err = try_assemble_dataset(&[], &empty_maps, &AssembleConfig::default()).unwrap_err();
        assert_eq!(err, DeepMapError::EmptyDataset);
        // Valid input still assembles.
        let ok = try_assemble_dataset(&graphs, &features, &AssembleConfig::default()).unwrap();
        assert_eq!(ok.inputs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "feature map count")]
    fn mismatched_features_panic() {
        let graphs = two_graphs();
        let features = vertex_feature_maps(&graphs, FeatureKind::ShortestPath, 0);
        // Wrong per-vertex slice for graph 1.
        assemble_graph(
            &graphs[1],
            &features.maps[0],
            4,
            features.dim,
            &AssembleConfig::default(),
        );
    }
}
