//! Span nesting across the pool: span stacks are thread-local, so a span
//! opened inside a pool worker never claims the caller's open span as its
//! parent — and every worker span still records into the shared registry.

use deepmap_obs::{FieldValue, Registry, TraceLevel};
use deepmap_par::{par_map_index, set_threads};

#[test]
fn pool_worker_spans_record_without_cross_thread_parents() {
    set_threads(4);
    let registry = Registry::new(TraceLevel::Spans);
    let caller = format!("{:?}", std::thread::current().id());

    let outer = registry.span("par.outer");
    let outer_id = outer.id();
    assert!(outer.is_recording());
    let doubled = par_map_index(32, |i| {
        let mut span = registry.span("par.item");
        span.record_u64("index", i as u64);
        span.record_str("thread", &format!("{:?}", std::thread::current().id()));
        i * 2
    });
    drop(outer);

    assert_eq!(doubled, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    let spans = registry.snapshot_spans();
    let items: Vec<_> = spans.iter().filter(|s| s.name == "par.item").collect();
    assert_eq!(items.len(), 32, "every worker span recorded exactly once");
    for span in &items {
        let thread = span
            .fields
            .iter()
            .find_map(|(k, v)| match v {
                FieldValue::Str(s) if k == "thread" => Some(s.clone()),
                _ => None,
            })
            .expect("every item span carries its thread");
        if thread == caller {
            // With >1 workers the caller only coordinates, but guard the
            // invariant anyway: same-thread nesting keeps its parent.
            assert_eq!(span.parent, Some(outer_id));
        } else {
            assert_eq!(
                span.parent, None,
                "span stacks are thread-local; a pool worker must not \
                 inherit the caller's open span"
            );
        }
    }
    // The outer span recorded too, parentless, and saw every item open
    // and close inside its lifetime.
    let outer_record = spans.iter().find(|s| s.id == outer_id).unwrap();
    assert_eq!(outer_record.parent, None);
    assert_eq!(outer_record.name, "par.outer");
    for item in &items {
        assert!(item.start_us >= outer_record.start_us);
        assert!(item.start_us + item.dur_us <= outer_record.start_us + outer_record.dur_us);
    }
}
