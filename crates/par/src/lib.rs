//! Shared deterministic thread pool for the workspace.
//!
//! Every parallel site in the workspace fans out through this crate so that
//! thread sizing, instrumentation, and determinism rules live in one place.
//! The primitives are *indexed*: work items carry their position, results are
//! stitched back in index order, and callers are expected to keep any
//! order-sensitive reduction (gradient sums, vocabulary interning) in that
//! fixed index order. Under that contract every computation is bit-identical
//! at any thread count, including `1`.
//!
//! The pool size comes from `DEEPMAP_THREADS` (default:
//! [`std::thread::available_parallelism`]) and can be overridden in-process
//! with [`set_threads`] — tests use that to compare thread counts without
//! re-execing. Threads are scoped ([`std::thread::scope`]): nothing outlives
//! a fan-out call, borrows work naturally, and worker panics propagate to the
//! caller via [`std::panic::resume_unwind`].
//!
//! Instrumentation (via `deepmap-obs`): the `par.pool_threads` gauge records
//! the resolved size, `par.fanout_us` the wall time of each parallel region,
//! and `par.task_wait_us` how long each work item sat queued before a worker
//! picked it up.

use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Unresolved marker for the global thread count.
const UNSET: usize = 0;

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(UNSET);

/// Number of worker threads the pool fans out to.
///
/// Resolution order: an in-process [`set_threads`] override, then the
/// `DEEPMAP_THREADS` environment variable, then
/// [`std::thread::available_parallelism`]. The result is cached after the
/// first call; invalid or zero values fall back to the default.
pub fn threads() -> usize {
    let cached = GLOBAL_THREADS.load(Ordering::Relaxed);
    if cached != UNSET {
        return cached;
    }
    let resolved = threads_from_env();
    GLOBAL_THREADS.store(resolved, Ordering::Relaxed);
    deepmap_obs::gauge("par.pool_threads").set(resolved as i64);
    resolved
}

/// Overrides the pool size for this process (tests, benches).
///
/// `n` is clamped to at least 1. Takes effect for every subsequent fan-out;
/// in-flight parallel regions are unaffected.
pub fn set_threads(n: usize) {
    let n = n.max(1);
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
    deepmap_obs::gauge("par.pool_threads").set(n as i64);
}

fn threads_from_env() -> usize {
    std::env::var("DEEPMAP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// `f(i)` for every `i in 0..n`, fanned out over the pool; results are
/// returned in index order regardless of which worker computed them.
///
/// Workers pull indices from a shared counter (dynamic load balancing), so
/// the *assignment* of index to worker is nondeterministic — but `f` receives
/// only the index, so as long as `f` itself is a pure function of `i` the
/// output vector is identical at any thread count.
///
/// # Panics
/// Re-raises the first worker panic on the calling thread.
pub fn par_map_index<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads().min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let started = Instant::now();
    let next = AtomicUsize::new(0);
    let wait_hist = deepmap_obs::histogram("par.task_wait_us");
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        if local.is_empty() {
                            wait_hist.observe(started.elapsed().as_micros() as f64);
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| resume_unwind(p)))
            .collect()
    });
    deepmap_obs::histogram("par.fanout_us").observe(started.elapsed().as_micros() as f64);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for bucket in buckets {
        for (i, r) in bucket {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("par_map_index: worker skipped an index"))
        .collect()
}

/// Maps `f(index, &item)` over a slice, preserving index order in the output.
///
/// Convenience wrapper over [`par_map_index`] for the common borrow-a-slice
/// case (per-graph pipeline stages, per-row kernel evaluation).
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_index(items.len(), |i| f(i, &items[i]))
}

/// Splits `data` into `chunk_len`-sized chunks and runs `f(chunk_index,
/// chunk)` on each, fanned out over the pool.
///
/// Chunks are assigned to workers round-robin by index, so every chunk is
/// visited exactly once and mutation is race-free by construction. The chunk
/// *boundaries* depend only on `chunk_len`, never on the thread count — the
/// determinism contract for in-place fan-out.
///
/// # Panics
/// Panics if `chunk_len == 0`; re-raises worker panics on the calling thread.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "par_chunks_mut: chunk_len must be >= 1");
    let n_chunks = data.len().div_ceil(chunk_len);
    let workers = threads().min(n_chunks.max(1));
    if workers <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let started = Instant::now();
    let mut assignments: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
        assignments[i % workers].push((i, chunk));
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = assignments
            .into_iter()
            .map(|work| {
                s.spawn(|| {
                    for (i, chunk) in work {
                        f(i, chunk);
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(p) = h.join() {
                resume_unwind(p);
            }
        }
    });
    deepmap_obs::histogram("par.fanout_us").observe(started.elapsed().as_micros() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialises tests that mutate the global thread count.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn map_index_preserves_order() {
        let _g = LOCK.lock().unwrap();
        set_threads(4);
        let out = par_map_index(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_indexed_matches_sequential_at_any_thread_count() {
        let _g = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..57).map(|i| i * 3 + 1).collect();
        let expect: Vec<u64> = items.iter().enumerate().map(|(i, v)| v + i as u64).collect();
        for threads in [1, 2, 4, 8] {
            set_threads(threads);
            let got = par_map_indexed(&items, |i, v| v + i as u64);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_empty_and_single() {
        let _g = LOCK.lock().unwrap();
        set_threads(4);
        assert_eq!(par_map_index(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_index(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn chunks_mut_visits_every_chunk_once() {
        let _g = LOCK.lock().unwrap();
        for threads in [1, 3, 8] {
            set_threads(threads);
            let mut data = vec![0u32; 103];
            par_chunks_mut(&mut data, 10, |chunk_idx, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1 + chunk_idx as u32;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, 1 + (i / 10) as u32, "threads={threads} element {i}");
            }
        }
    }

    #[test]
    fn chunks_mut_ragged_tail() {
        let _g = LOCK.lock().unwrap();
        set_threads(2);
        let mut data = vec![1u8; 7];
        let mut seen = Vec::new();
        let lens = std::sync::Mutex::new(&mut seen);
        par_chunks_mut(&mut data, 3, |i, chunk| {
            lens.lock().unwrap().push((i, chunk.len()));
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 3), (1, 3), (2, 1)]);
    }

    #[test]
    fn worker_panic_propagates() {
        let _g = LOCK.lock().unwrap();
        set_threads(4);
        let caught = std::panic::catch_unwind(|| {
            par_map_index(16, |i| {
                if i == 9 {
                    panic!("boom at nine");
                }
                i
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn set_threads_clamps_to_one() {
        let _g = LOCK.lock().unwrap();
        set_threads(0);
        assert_eq!(threads(), 1);
        set_threads(4);
        assert_eq!(threads(), 4);
    }
}
