//! Stratified k-fold cross-validation with per-fold fault isolation.
//!
//! Every fold worker runs under `catch_unwind`: a panicking fold (bad
//! data, a diverged training run that exhausted its retries, a bug in one
//! baseline) degrades the table cell to "n/k folds completed" instead of
//! killing a multi-hour table run. Completed folds can also be injected
//! via [`CvOptions::precomputed`], which is how the bench harness resumes
//! a killed run from its journal without re-training finished folds.

use crate::metrics::MeanStd;
use deepmap_kernels::KernelMatrix;
use deepmap_svm::multiclass::select_c_and_train;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Invalid fold configuration, from [`try_stratified_folds`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CvError {
    /// `k == 0`.
    ZeroFolds,
    /// `k > labels.len()`.
    TooManyFolds {
        /// Requested fold count.
        folds: usize,
        /// Available samples.
        samples: usize,
    },
}

impl fmt::Display for CvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CvError::ZeroFolds => write!(f, "need at least one fold"),
            CvError::TooManyFolds { folds, samples } => {
                write!(
                    f,
                    "more folds than samples: {folds} folds for {samples} samples"
                )
            }
        }
    }
}

impl std::error::Error for CvError {}

/// A fold that did not produce a measurement, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldFailure {
    /// Fold index in `0..k`.
    pub fold: usize,
    /// Panic message or validation failure.
    pub message: String,
}

/// Result of one cross-validation run.
#[derive(Debug, Clone)]
pub struct CvSummary {
    /// Accuracy mean ± std over *completed* folds (at the selected epoch
    /// for neural models).
    pub accuracy: MeanStd,
    /// Per-fold accuracies of the completed folds, in fold order.
    pub fold_accuracies: Vec<f64>,
    /// Selected epoch (neural models only): the epoch with the best mean
    /// CV accuracy, following GIN's protocol (paper §5.1).
    pub best_epoch: Option<usize>,
    /// Mean wall-clock seconds per epoch (neural models; 0 for kernels).
    pub mean_epoch_seconds: f64,
    /// Number of folds requested (`k`).
    pub folds_total: usize,
    /// Folds that crashed or were unusable, with their reasons.
    pub failures: Vec<FoldFailure>,
}

impl CvSummary {
    /// Number of folds that produced a measurement.
    pub fn folds_completed(&self) -> usize {
        self.folds_total - self.failures.len()
    }

    /// `true` when every requested fold completed.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Splits `labels` into `k` stratified folds: each fold receives an even
/// share of every class (shuffled within class by `seed`). Returns the test
/// indices per fold.
///
/// # Panics
/// Panics when `k == 0` or `k > labels.len()`. Use
/// [`try_stratified_folds`] for a fallible version.
pub fn stratified_folds(labels: &[usize], k: usize, seed: u64) -> Vec<Vec<usize>> {
    try_stratified_folds(labels, k, seed).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`stratified_folds`].
pub fn try_stratified_folds(
    labels: &[usize],
    k: usize,
    seed: u64,
) -> Result<Vec<Vec<usize>>, CvError> {
    if k == 0 {
        return Err(CvError::ZeroFolds);
    }
    if k > labels.len().max(1) {
        return Err(CvError::TooManyFolds {
            folds: k,
            samples: labels.len(),
        });
    }
    let n_classes = labels.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for class in 0..n_classes {
        let mut members: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect();
        members.shuffle(&mut rng);
        for (j, idx) in members.into_iter().enumerate() {
            folds[j % k].push(idx);
        }
    }
    for fold in &mut folds {
        fold.sort_unstable();
    }
    Ok(folds)
}

/// Complement of `test` within `0..n`, preserving order.
pub fn train_indices(n: usize, test: &[usize]) -> Vec<usize> {
    let mut is_test = vec![false; n];
    for &i in test {
        is_test[i] = true;
    }
    (0..n).filter(|&i| !is_test[i]).collect()
}

/// Renders a caught panic payload (almost always a `&str` or `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "fold worker panicked".to_string()
    }
}

/// Cross-validates a kernel machine: per fold, tunes `C` on the fold's
/// training data (paper protocol) and measures test accuracy.
///
/// A fold with an empty split, or one whose solver panics, is recorded in
/// [`CvSummary::failures`] instead of contributing a bogus 0% accuracy.
pub fn cross_validate_svm(
    kernel: &KernelMatrix,
    labels: &[usize],
    n_classes: usize,
    k: usize,
    c_grid: &[f64],
    seed: u64,
) -> CvSummary {
    let folds = stratified_folds(labels, k, seed);
    let mut fold_accuracies = Vec::with_capacity(k);
    let mut failures = Vec::new();
    for (fi, test) in folds.iter().enumerate() {
        let train = train_indices(labels.len(), test);
        if test.is_empty() || train.is_empty() {
            let split = if test.is_empty() { "test" } else { "train" };
            failures.push(FoldFailure {
                fold: fi,
                message: format!("empty {split} split"),
            });
            continue;
        }
        let train_y: Vec<usize> = train.iter().map(|&i| labels[i]).collect();
        let test_y: Vec<usize> = test.iter().map(|&i| labels[i]).collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let (model, _c) = select_c_and_train(kernel, &train, &train_y, n_classes, c_grid);
            model.accuracy(kernel, test, &test_y)
        }));
        match outcome {
            Ok(acc) => fold_accuracies.push(acc),
            Err(payload) => failures.push(FoldFailure {
                fold: fi,
                message: panic_message(payload.as_ref()),
            }),
        }
    }
    CvSummary {
        accuracy: MeanStd::of(&fold_accuracies),
        fold_accuracies,
        best_epoch: None,
        mean_epoch_seconds: 0.0,
        folds_total: k,
        failures,
    }
}

/// Per-fold output of an epoch-tracked neural trainer: test accuracy after
/// every epoch, plus the mean seconds one epoch took.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldCurve {
    /// `test_accuracy[e]` = held-out accuracy after epoch `e`.
    pub test_accuracy: Vec<f64>,
    /// Mean wall-clock seconds per epoch in this fold.
    pub epoch_seconds: f64,
    /// Diverged training attempts the fold recovered from (0 = clean run).
    pub retries: usize,
}

/// Harness options for [`cross_validate_epochs_with`].
pub struct CvOptions<'a> {
    /// When `> 1`, folds fan out over the shared `deepmap-par` pool (whose
    /// size — `DEEPMAP_THREADS` — governs the actual parallelism).
    pub threads: usize,
    /// Already-completed fold curves, indexed by fold. `Some` entries are
    /// used as-is (the worker is never invoked and
    /// [`CvOptions::on_fold`] is not re-fired for them) — this is the
    /// resume path: the bench journal supplies finished folds here.
    pub precomputed: Vec<Option<FoldCurve>>,
    /// Called after each *freshly computed* fold completes, from the
    /// worker thread that ran it. The bench harness appends the fold to
    /// its journal here, so a kill at any point loses at most the folds
    /// still in flight.
    // An alias would hide the `Sync` bound callers must satisfy to fan
    // folds out across the pool.
    #[allow(clippy::type_complexity)]
    pub on_fold: Option<&'a (dyn Fn(usize, &FoldCurve) + Sync)>,
}

impl Default for CvOptions<'static> {
    fn default() -> Self {
        CvOptions {
            threads: 1,
            precomputed: Vec::new(),
            on_fold: None,
        }
    }
}

/// Cross-validates an epoch-tracked model. `train_fold(fold_index, train,
/// test)` trains from scratch and returns the per-epoch held-out curve.
/// The reported accuracy follows GIN's protocol: select the epoch with the
/// best accuracy averaged over folds, then report mean ± std across folds
/// *at that epoch*.
///
/// When `threads > 1`, folds fan out over the shared `deepmap-par` pool
/// (each fold is an independent training run); the pool size —
/// `DEEPMAP_THREADS` — governs the actual degree of parallelism. A fold
/// whose worker panics is isolated
/// and recorded in [`CvSummary::failures`]; the remaining folds still
/// produce a (degraded) summary.
pub fn cross_validate_epochs<F>(
    labels: &[usize],
    k: usize,
    seed: u64,
    threads: usize,
    train_fold: F,
) -> CvSummary
where
    F: Fn(usize, &[usize], &[usize]) -> FoldCurve + Sync,
{
    cross_validate_epochs_with(
        labels,
        k,
        seed,
        &CvOptions {
            threads,
            ..CvOptions::default()
        },
        train_fold,
    )
}

/// [`cross_validate_epochs`] with resume and journaling hooks; see
/// [`CvOptions`].
pub fn cross_validate_epochs_with<F>(
    labels: &[usize],
    k: usize,
    seed: u64,
    options: &CvOptions<'_>,
    train_fold: F,
) -> CvSummary
where
    F: Fn(usize, &[usize], &[usize]) -> FoldCurve + Sync,
{
    let folds = stratified_folds(labels, k, seed);
    let n = labels.len();

    // Seed the result slots from the precomputed (journaled) folds.
    let mut results: Vec<Option<Result<FoldCurve, String>>> = (0..k)
        .map(|fi| options.precomputed.get(fi).cloned().flatten().map(Ok))
        .collect();

    type FoldJob = (usize, Vec<usize>, Vec<usize>);
    let jobs: Vec<FoldJob> = folds
        .iter()
        .enumerate()
        .filter(|(fi, _)| results[*fi].is_none())
        .map(|(fi, test)| (fi, train_indices(n, test), test.clone()))
        .collect();

    let run_one = |fi: usize, train: &[usize], test: &[usize]| -> Result<FoldCurve, String> {
        let mut span = deepmap_obs::span("cv.fold");
        span.record_u64("fold", fi as u64);
        span.record_u64("train", train.len() as u64);
        span.record_u64("test", test.len() as u64);
        let outcome = catch_unwind(AssertUnwindSafe(|| train_fold(fi, train, test)));
        match outcome {
            Ok(curve) => {
                deepmap_obs::counter("cv.folds_completed").inc();
                if curve.retries > 0 {
                    deepmap_obs::counter("cv.divergence_retries").add(curve.retries as u64);
                }
                span.record_u64("retries", curve.retries as u64);
                if let Some(cb) = options.on_fold {
                    cb(fi, &curve);
                }
                Ok(curve)
            }
            Err(payload) => {
                deepmap_obs::counter("cv.fold_failures").inc();
                span.record_str("outcome", "panicked");
                Err(panic_message(payload.as_ref()))
            }
        }
    };

    if options.threads <= 1 || jobs.len() <= 1 {
        for (fi, train, test) in &jobs {
            results[*fi] = Some(run_one(*fi, train, test));
        }
    } else {
        // Fold panics are caught inside `run_one`, so the pool only sees
        // cleanly returning tasks; outcomes come back in job order.
        let outcomes =
            deepmap_par::par_map_indexed(&jobs, |_, (fi, train, test)| run_one(*fi, train, test));
        for ((fi, _, _), outcome) in jobs.iter().zip(outcomes) {
            results[*fi] = Some(outcome);
        }
    }

    let mut completed: Vec<(usize, FoldCurve)> = Vec::new();
    let mut failures = Vec::new();
    for (fi, slot) in results.into_iter().enumerate() {
        match slot.expect("every fold resolved") {
            Ok(curve) => completed.push((fi, curve)),
            Err(message) => failures.push(FoldFailure { fold: fi, message }),
        }
    }

    // Epoch selection on the mean curve over completed folds.
    let n_epochs = completed
        .iter()
        .map(|(_, c)| c.test_accuracy.len())
        .min()
        .unwrap_or(0);
    let mut best_epoch = 0usize;
    let mut best_mean = f64::NEG_INFINITY;
    for e in 0..n_epochs {
        let mean: f64 = completed
            .iter()
            .map(|(_, c)| c.test_accuracy[e])
            .sum::<f64>()
            / completed.len().max(1) as f64;
        if mean > best_mean {
            best_mean = mean;
            best_epoch = e;
        }
    }
    let fold_accuracies: Vec<f64> = if n_epochs == 0 {
        vec![0.0; completed.len()]
    } else {
        completed
            .iter()
            .map(|(_, c)| c.test_accuracy[best_epoch])
            .collect()
    };
    let mean_epoch_seconds =
        completed.iter().map(|(_, c)| c.epoch_seconds).sum::<f64>() / completed.len().max(1) as f64;
    CvSummary {
        accuracy: MeanStd::of(&fold_accuracies),
        fold_accuracies,
        best_epoch: (n_epochs > 0).then_some(best_epoch),
        mean_epoch_seconds,
        folds_total: k,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn folds_are_a_partition() {
        let labels = vec![0, 1, 0, 1, 0, 1, 0, 1, 2, 2];
        let folds = stratified_folds(&labels, 3, 1);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn folds_are_stratified() {
        // 20 of class 0 and 20 of class 1 into 10 folds → 2 per class each.
        let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let folds = stratified_folds(&labels, 10, 2);
        for fold in &folds {
            let c0 = fold.iter().filter(|&&i| labels[i] == 0).count();
            let c1 = fold.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(c0, 2);
            assert_eq!(c1, 2);
        }
    }

    #[test]
    fn train_indices_complement() {
        let train = train_indices(6, &[1, 4]);
        assert_eq!(train, vec![0, 2, 3, 5]);
    }

    #[test]
    fn deterministic_folds() {
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        assert_eq!(
            stratified_folds(&labels, 5, 9),
            stratified_folds(&labels, 5, 9)
        );
        assert_ne!(
            stratified_folds(&labels, 5, 9),
            stratified_folds(&labels, 5, 10)
        );
    }

    #[test]
    fn epoch_selection_picks_best_mean() {
        // Fold 0 curve peaks at epoch 1, fold 1 at epoch 2; mean peaks at 2.
        let labels = vec![0, 0, 1, 1];
        let curves = [vec![0.2, 0.8, 0.7], vec![0.1, 0.5, 0.9]];
        let summary = cross_validate_epochs(&labels, 2, 1, 1, |fi, _train, _test| FoldCurve {
            test_accuracy: curves[fi].clone(),
            epoch_seconds: 0.5,
            retries: 0,
        });
        // mean(e1) = 0.65, mean(e2) = 0.8 → epoch 2 (index 2).
        assert_eq!(summary.best_epoch, Some(2));
        assert!((summary.accuracy.mean - 0.8).abs() < 1e-12);
        assert!((summary.mean_epoch_seconds - 0.5).abs() < 1e-12);
        assert!(summary.is_complete());
        assert_eq!(summary.folds_completed(), 2);
    }

    #[test]
    fn parallel_folds_match_serial() {
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let runner = |fi: usize, train: &[usize], test: &[usize]| FoldCurve {
            test_accuracy: vec![
                (fi as f64 + train.len() as f64) / 30.0,
                (test.len() as f64) / 10.0,
            ],
            epoch_seconds: 0.1,
            retries: 0,
        };
        let serial = cross_validate_epochs(&labels, 4, 3, 1, runner);
        let parallel = cross_validate_epochs(&labels, 4, 3, 4, runner);
        assert_eq!(serial.fold_accuracies, parallel.fold_accuracies);
        assert_eq!(serial.best_epoch, parallel.best_epoch);
    }

    #[test]
    #[should_panic(expected = "more folds than samples")]
    fn too_many_folds_panics() {
        stratified_folds(&[0, 1], 5, 1);
    }

    #[test]
    fn try_folds_reports_bad_config() {
        assert_eq!(try_stratified_folds(&[0, 1], 0, 1), Err(CvError::ZeroFolds));
        assert_eq!(
            try_stratified_folds(&[0, 1], 5, 1),
            Err(CvError::TooManyFolds {
                folds: 5,
                samples: 2
            })
        );
        assert!(try_stratified_folds(&[0, 1], 2, 1).is_ok());
    }

    #[test]
    fn serial_fold_panic_is_isolated() {
        let labels: Vec<usize> = (0..12).map(|i| i % 2).collect();
        let summary = cross_validate_epochs(&labels, 4, 1, 1, |fi, _train, _test| {
            if fi == 2 {
                panic!("synthetic fold crash");
            }
            FoldCurve {
                test_accuracy: vec![0.5, 0.75],
                epoch_seconds: 0.1,
                retries: 0,
            }
        });
        assert_eq!(summary.folds_total, 4);
        assert_eq!(summary.folds_completed(), 3);
        assert_eq!(summary.fold_accuracies.len(), 3);
        assert_eq!(summary.failures.len(), 1);
        assert_eq!(summary.failures[0].fold, 2);
        assert!(summary.failures[0].message.contains("synthetic fold crash"));
        // The surviving folds still produce the epoch-selected mean.
        assert!((summary.accuracy.mean - 0.75).abs() < 1e-12);
    }

    #[test]
    fn parallel_fold_panic_is_isolated() {
        let labels: Vec<usize> = (0..12).map(|i| i % 2).collect();
        let run = |fi: usize, _train: &[usize], _test: &[usize]| {
            if fi == 0 {
                panic!("worker 0 down");
            }
            FoldCurve {
                test_accuracy: vec![0.6],
                epoch_seconds: 0.1,
                retries: 0,
            }
        };
        let summary = cross_validate_epochs(&labels, 4, 1, 4, run);
        assert_eq!(summary.folds_completed(), 3);
        assert_eq!(
            summary.failures,
            vec![FoldFailure {
                fold: 0,
                message: "worker 0 down".to_string(),
            }]
        );
    }

    #[test]
    fn precomputed_folds_are_not_rerun() {
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let invocations = AtomicUsize::new(0);
        let cached = FoldCurve {
            test_accuracy: vec![0.9, 0.9],
            epoch_seconds: 0.2,
            retries: 0,
        };
        let options = CvOptions {
            precomputed: vec![Some(cached.clone()), None, None, None],
            ..CvOptions::default()
        };
        let summary = cross_validate_epochs_with(&labels, 4, 1, &options, |fi, _t, _e| {
            invocations.fetch_add(1, Ordering::SeqCst);
            assert_ne!(fi, 0, "precomputed fold must not re-run");
            FoldCurve {
                test_accuracy: vec![0.5, 0.7],
                epoch_seconds: 0.1,
                retries: 0,
            }
        });
        assert_eq!(invocations.load(Ordering::SeqCst), 3);
        assert_eq!(summary.folds_completed(), 4);
        // Epoch 1 mean = (0.9 + 3·0.7) / 4 = 0.75, beating epoch 0.
        assert_eq!(summary.best_epoch, Some(1));
        assert_eq!(summary.fold_accuracies[0], 0.9);
    }

    #[test]
    fn on_fold_fires_for_fresh_folds_only() {
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let record = |fi: usize, curve: &FoldCurve| {
            assert_eq!(curve.test_accuracy.len(), 1);
            seen.lock().unwrap().push(fi);
        };
        let options = CvOptions {
            threads: 2,
            precomputed: vec![
                None,
                Some(FoldCurve {
                    test_accuracy: vec![0.4],
                    epoch_seconds: 0.0,
                    retries: 0,
                }),
                None,
                None,
            ],
            on_fold: Some(&record),
        };
        cross_validate_epochs_with(&labels, 4, 1, &options, |_fi, _t, _e| FoldCurve {
            test_accuracy: vec![0.5],
            epoch_seconds: 0.0,
            retries: 0,
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 2, 3], "journaled fold 1 must not re-fire");
    }

    #[test]
    fn svm_empty_fold_is_failure_not_zero() {
        // Eight samples (4 per class) into five folds: the per-class
        // round-robin never reaches fold 4, so its test split is empty —
        // previously scored as a hard 0% accuracy, dragging the mean down.
        let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let kernel = KernelMatrix::from_pairwise(8, 1, |i, j| {
            let x = [1.0f64, 1.1, 0.9, 1.05, -1.0, -0.9, -1.1, -1.05];
            x[i] * x[j]
        });
        let summary = cross_validate_svm(&kernel, &labels, 2, 5, &[1.0], 5);
        assert_eq!(summary.folds_total, 5);
        assert_eq!(summary.folds_completed(), 4);
        assert_eq!(summary.fold_accuracies.len(), 4);
        assert_eq!(summary.failures.len(), 1);
        assert_eq!(summary.failures[0].fold, 4);
        assert!(summary.failures[0].message.contains("empty"));
    }
}
