//! Stratified k-fold cross-validation.

use crate::metrics::MeanStd;
use deepmap_kernels::KernelMatrix;
use deepmap_svm::multiclass::select_c_and_train;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of one cross-validation run.
#[derive(Debug, Clone)]
pub struct CvSummary {
    /// Accuracy mean ± std over folds (at the selected epoch for neural
    /// models).
    pub accuracy: MeanStd,
    /// Per-fold accuracies in fold order.
    pub fold_accuracies: Vec<f64>,
    /// Selected epoch (neural models only): the epoch with the best mean
    /// CV accuracy, following GIN's protocol (paper §5.1).
    pub best_epoch: Option<usize>,
    /// Mean wall-clock seconds per epoch (neural models; 0 for kernels).
    pub mean_epoch_seconds: f64,
}

/// Splits `labels` into `k` stratified folds: each fold receives an even
/// share of every class (shuffled within class by `seed`). Returns the test
/// indices per fold.
///
/// # Panics
/// Panics when `k == 0` or `k > labels.len()`.
pub fn stratified_folds(labels: &[usize], k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 1, "need at least one fold");
    assert!(k <= labels.len().max(1), "more folds than samples");
    let n_classes = labels.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for class in 0..n_classes {
        let mut members: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect();
        members.shuffle(&mut rng);
        for (j, idx) in members.into_iter().enumerate() {
            folds[j % k].push(idx);
        }
    }
    for fold in &mut folds {
        fold.sort_unstable();
    }
    folds
}

/// Complement of `test` within `0..n`, preserving order.
pub fn train_indices(n: usize, test: &[usize]) -> Vec<usize> {
    let mut is_test = vec![false; n];
    for &i in test {
        is_test[i] = true;
    }
    (0..n).filter(|&i| !is_test[i]).collect()
}

/// Cross-validates a kernel machine: per fold, tunes `C` on the fold's
/// training data (paper protocol) and measures test accuracy.
pub fn cross_validate_svm(
    kernel: &KernelMatrix,
    labels: &[usize],
    n_classes: usize,
    k: usize,
    c_grid: &[f64],
    seed: u64,
) -> CvSummary {
    let folds = stratified_folds(labels, k, seed);
    let mut fold_accuracies = Vec::with_capacity(k);
    for test in &folds {
        let train = train_indices(labels.len(), test);
        let train_y: Vec<usize> = train.iter().map(|&i| labels[i]).collect();
        let test_y: Vec<usize> = test.iter().map(|&i| labels[i]).collect();
        if train.is_empty() || test.is_empty() {
            fold_accuracies.push(0.0);
            continue;
        }
        let (model, _c) = select_c_and_train(kernel, &train, &train_y, n_classes, c_grid);
        fold_accuracies.push(model.accuracy(kernel, test, &test_y));
    }
    CvSummary {
        accuracy: MeanStd::of(&fold_accuracies),
        fold_accuracies,
        best_epoch: None,
        mean_epoch_seconds: 0.0,
    }
}

/// Per-fold output of an epoch-tracked neural trainer: test accuracy after
/// every epoch, plus the mean seconds one epoch took.
#[derive(Debug, Clone)]
pub struct FoldCurve {
    /// `test_accuracy[e]` = held-out accuracy after epoch `e`.
    pub test_accuracy: Vec<f64>,
    /// Mean wall-clock seconds per epoch in this fold.
    pub epoch_seconds: f64,
}

/// Cross-validates an epoch-tracked model. `train_fold(fold_index, train,
/// test)` trains from scratch and returns the per-epoch held-out curve.
/// The reported accuracy follows GIN's protocol: select the epoch with the
/// best accuracy averaged over folds, then report mean ± std across folds
/// *at that epoch*.
///
/// Folds run on `threads` scoped threads when `threads > 1` (each fold is
/// an independent training run).
pub fn cross_validate_epochs<F>(
    labels: &[usize],
    k: usize,
    seed: u64,
    threads: usize,
    train_fold: F,
) -> CvSummary
where
    F: Fn(usize, &[usize], &[usize]) -> FoldCurve + Sync,
{
    let folds = stratified_folds(labels, k, seed);
    let n = labels.len();
    type FoldJob = (usize, Vec<usize>, Vec<usize>);
    let jobs: Vec<FoldJob> = folds
        .iter()
        .enumerate()
        .map(|(fi, test)| (fi, train_indices(n, test), test.clone()))
        .collect();

    let curves: Vec<FoldCurve> = if threads <= 1 {
        jobs.iter()
            .map(|(fi, train, test)| train_fold(*fi, train, test))
            .collect()
    } else {
        let chunks: Vec<&[FoldJob]> = jobs.chunks(jobs.len().div_ceil(threads)).collect();
        let mut indexed: Vec<(usize, FoldCurve)> = crossbeam::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    let train_fold = &train_fold;
                    scope.spawn(move |_| {
                        chunk
                            .iter()
                            .map(|(fi, train, test)| (*fi, train_fold(*fi, train, test)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("fold worker panicked"))
                .collect()
        })
        .expect("scope panicked");
        indexed.sort_by_key(|(fi, _)| *fi);
        indexed.into_iter().map(|(_, c)| c).collect()
    };

    // Epoch selection on the mean curve.
    let n_epochs = curves.iter().map(|c| c.test_accuracy.len()).min().unwrap_or(0);
    let mut best_epoch = 0usize;
    let mut best_mean = f64::NEG_INFINITY;
    for e in 0..n_epochs {
        let mean: f64 =
            curves.iter().map(|c| c.test_accuracy[e]).sum::<f64>() / curves.len().max(1) as f64;
        if mean > best_mean {
            best_mean = mean;
            best_epoch = e;
        }
    }
    let fold_accuracies: Vec<f64> = if n_epochs == 0 {
        vec![0.0; curves.len()]
    } else {
        curves.iter().map(|c| c.test_accuracy[best_epoch]).collect()
    };
    let mean_epoch_seconds =
        curves.iter().map(|c| c.epoch_seconds).sum::<f64>() / curves.len().max(1) as f64;
    CvSummary {
        accuracy: MeanStd::of(&fold_accuracies),
        fold_accuracies,
        best_epoch: (n_epochs > 0).then_some(best_epoch),
        mean_epoch_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_are_a_partition() {
        let labels = vec![0, 1, 0, 1, 0, 1, 0, 1, 2, 2];
        let folds = stratified_folds(&labels, 3, 1);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn folds_are_stratified() {
        // 20 of class 0 and 20 of class 1 into 10 folds → 2 per class each.
        let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let folds = stratified_folds(&labels, 10, 2);
        for fold in &folds {
            let c0 = fold.iter().filter(|&&i| labels[i] == 0).count();
            let c1 = fold.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(c0, 2);
            assert_eq!(c1, 2);
        }
    }

    #[test]
    fn train_indices_complement() {
        let train = train_indices(6, &[1, 4]);
        assert_eq!(train, vec![0, 2, 3, 5]);
    }

    #[test]
    fn deterministic_folds() {
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        assert_eq!(stratified_folds(&labels, 5, 9), stratified_folds(&labels, 5, 9));
        assert_ne!(stratified_folds(&labels, 5, 9), stratified_folds(&labels, 5, 10));
    }

    #[test]
    fn epoch_selection_picks_best_mean() {
        // Fold 0 curve peaks at epoch 1, fold 1 at epoch 2; mean peaks at 2.
        let labels = vec![0, 0, 1, 1];
        let curves = [
            vec![0.2, 0.8, 0.7],
            vec![0.1, 0.5, 0.9],
        ];
        let summary = cross_validate_epochs(&labels, 2, 1, 1, |fi, _train, _test| FoldCurve {
            test_accuracy: curves[fi].clone(),
            epoch_seconds: 0.5,
        });
        assert_eq!(summary.best_epoch, Some(1).map(|_| {
            // mean(e1) = 0.65, mean(e2) = 0.8 → epoch 2 (index 2).
            2
        }));
        assert!((summary.accuracy.mean - 0.8).abs() < 1e-12);
        assert!((summary.mean_epoch_seconds - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_folds_match_serial() {
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let runner = |fi: usize, train: &[usize], test: &[usize]| FoldCurve {
            test_accuracy: vec![
                (fi as f64 + train.len() as f64) / 30.0,
                (test.len() as f64) / 10.0,
            ],
            epoch_seconds: 0.1,
        };
        let serial = cross_validate_epochs(&labels, 4, 3, 1, runner);
        let parallel = cross_validate_epochs(&labels, 4, 3, 4, runner);
        assert_eq!(serial.fold_accuracies, parallel.fold_accuracies);
        assert_eq!(serial.best_epoch, parallel.best_epoch);
    }

    #[test]
    #[should_panic(expected = "more folds than samples")]
    fn too_many_folds_panics() {
        stratified_folds(&[0, 1], 5, 1);
    }
}
