//! Evaluation harness for the DeepMap reproduction.
//!
//! Implements the paper's protocol (§5.1): 10-fold cross-validation with
//! mean accuracy ± standard deviation; for neural models the reported epoch
//! is the one with the best CV accuracy averaged over the folds (following
//! GIN); for kernel machines `C` is tuned per fold on that fold's training
//! data.
//!
//! - [`cv`] — stratified fold construction and the generic CV drivers for
//!   kernel SVMs and epoch-tracked neural trainers.
//! - [`metrics`] — accuracy aggregation (mean ± std).
//! - [`tables`] — markdown rendering of result tables matching the paper's
//!   layout.

#![deny(missing_docs)]

pub mod cv;
pub mod metrics;
pub mod tables;

pub use cv::{stratified_folds, CvError, CvOptions, CvSummary, FoldFailure};
pub use metrics::{ConfusionMatrix, MeanStd};
pub use tables::Cell;
