//! Accuracy aggregation.

/// A mean ± (population) standard deviation pair, printed the way the paper
/// reports accuracies (percent, two decimals).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Mean value (fraction in `[0, 1]` for accuracies).
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl MeanStd {
    /// Aggregates a slice of values.
    ///
    /// Returns `mean = std = 0` for empty input.
    pub fn of(values: &[f64]) -> MeanStd {
        if values.is_empty() {
            return MeanStd {
                mean: 0.0,
                std: 0.0,
            };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        MeanStd {
            mean,
            std: var.sqrt(),
        }
    }

    /// Formats as the paper does: `54.53±6.16` (percent).
    pub fn as_percent(&self) -> String {
        format!("{:.2}±{:.2}", self.mean * 100.0, self.std * 100.0)
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_percent())
    }
}

/// A confusion matrix over `n_classes` classes.
///
/// `counts[true][predicted]`, accumulated with [`ConfusionMatrix::record`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n_classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Empty matrix for `n_classes` classes.
    pub fn new(n_classes: usize) -> Self {
        ConfusionMatrix {
            n_classes,
            counts: vec![0; n_classes * n_classes],
        }
    }

    /// Records one `(true, predicted)` observation.
    ///
    /// # Panics
    /// Panics when either class is out of range.
    pub fn record(&mut self, true_class: usize, predicted: usize) {
        assert!(true_class < self.n_classes && predicted < self.n_classes);
        self.counts[true_class * self.n_classes + predicted] += 1;
    }

    /// Count for `(true, predicted)`.
    pub fn get(&self, true_class: usize, predicted: usize) -> usize {
        self.counts[true_class * self.n_classes + predicted]
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.n_classes).map(|c| self.get(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Per-class F1 score (0 when the class never appears as truth or
    /// prediction).
    pub fn f1(&self, class: usize) -> f64 {
        let tp = self.get(class, class) as f64;
        let fp: f64 = (0..self.n_classes)
            .filter(|&t| t != class)
            .map(|t| self.get(t, class) as f64)
            .sum();
        let fn_: f64 = (0..self.n_classes)
            .filter(|&p| p != class)
            .map(|p| self.get(class, p) as f64)
            .sum();
        let denom = 2.0 * tp + fp + fn_;
        if denom == 0.0 {
            0.0
        } else {
            2.0 * tp / denom
        }
    }

    /// Macro-averaged F1 over all classes.
    pub fn macro_f1(&self) -> f64 {
        if self.n_classes == 0 {
            return 0.0;
        }
        (0..self.n_classes).map(|c| self.f1(c)).sum::<f64>() / self.n_classes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let m = MeanStd::of(&[0.5, 0.7]);
        assert!((m.mean - 0.6).abs() < 1e-12);
        assert!((m.std - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_is_zero() {
        let m = MeanStd::of(&[]);
        assert_eq!(m.mean, 0.0);
        assert_eq!(m.std, 0.0);
    }

    #[test]
    fn constant_has_zero_std() {
        let m = MeanStd::of(&[0.42; 10]);
        assert!((m.mean - 0.42).abs() < 1e-12);
        // Floating-point summation can leave a vanishing residual variance.
        assert!(m.std < 1e-9);
    }

    #[test]
    fn percent_formatting() {
        let m = MeanStd {
            mean: 0.5453,
            std: 0.0616,
        };
        assert_eq!(m.as_percent(), "54.53±6.16");
        assert_eq!(format!("{m}"), "54.53±6.16");
    }

    #[test]
    fn confusion_accuracy_and_f1() {
        let mut cm = ConfusionMatrix::new(2);
        // 3 true positives of class 1, 1 false negative, 1 false positive,
        // 5 true negatives.
        for _ in 0..3 {
            cm.record(1, 1);
        }
        cm.record(1, 0);
        cm.record(0, 1);
        for _ in 0..5 {
            cm.record(0, 0);
        }
        assert_eq!(cm.total(), 10);
        assert!((cm.accuracy() - 0.8).abs() < 1e-12);
        // F1(class 1) = 2·3 / (2·3 + 1 + 1) = 0.75.
        assert!((cm.f1(1) - 0.75).abs() < 1e-12);
        assert!(cm.macro_f1() > 0.0 && cm.macro_f1() < 1.0);
    }

    #[test]
    fn confusion_empty_class_f1_zero() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        assert_eq!(cm.f1(2), 0.0);
        assert!((cm.accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn confusion_out_of_range_panics() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 5);
    }
}
