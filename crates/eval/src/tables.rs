//! Markdown rendering of result tables in the paper's layout.

use crate::metrics::MeanStd;

/// A result table: datasets down the rows, methods across the columns,
/// accuracy cells.
#[derive(Debug, Clone, Default)]
pub struct ResultTable {
    methods: Vec<String>,
    rows: Vec<(String, Vec<Option<MeanStd>>)>,
}

impl ResultTable {
    /// New table with the given method columns.
    pub fn new<S: Into<String>>(methods: Vec<S>) -> Self {
        ResultTable {
            methods: methods.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a dataset row; `cells` align with the method columns
    /// (`None` renders as `N/A`, as the paper prints for SP on COLLAB).
    ///
    /// # Panics
    /// Panics when the cell count does not match the method count.
    pub fn push_row<S: Into<String>>(&mut self, dataset: S, cells: Vec<Option<MeanStd>>) {
        assert_eq!(cells.len(), self.methods.len(), "cell/method count mismatch");
        self.rows.push((dataset.into(), cells));
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as GitHub-flavoured markdown, bolding the best
    /// cell per row (the paper bolds winners).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| Dataset |");
        for m in &self.methods {
            out.push_str(&format!(" {m} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.methods {
            out.push_str("---|");
        }
        out.push('\n');
        for (dataset, cells) in &self.rows {
            let best = cells
                .iter()
                .flatten()
                .map(|c| c.mean)
                .fold(f64::NEG_INFINITY, f64::max);
            out.push_str(&format!("| {dataset} |"));
            for cell in cells {
                match cell {
                    Some(c) if (c.mean - best).abs() < 1e-12 => {
                        out.push_str(&format!(" **{}** |", c.as_percent()));
                    }
                    Some(c) => out.push_str(&format!(" {} |", c.as_percent())),
                    None => out.push_str(" N/A |"),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Renders a simple two-column series (e.g. a figure's x/y data) as
/// markdown, for the figure-reproduction binaries.
pub fn series_markdown(title: &str, x_label: &str, series: &[(String, Vec<f64>)], xs: &[f64]) -> String {
    let mut out = format!("### {title}\n\n| {x_label} |");
    for (name, _) in series {
        out.push_str(&format!(" {name} |"));
    }
    out.push_str("\n|---|");
    for _ in series {
        out.push_str("---|");
    }
    out.push('\n');
    for (i, x) in xs.iter().enumerate() {
        out.push_str(&format!("| {x:.0} |"));
        for (_, ys) in series {
            match ys.get(i) {
                Some(y) => out.push_str(&format!(" {:.2} |", y * 100.0)),
                None => out.push_str(" - |"),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(mean: f64, std: f64) -> Option<MeanStd> {
        Some(MeanStd { mean, std })
    }

    #[test]
    fn renders_markdown_with_bold_winner() {
        let mut t = ResultTable::new(vec!["GK", "DEEPMAP-GK"]);
        t.push_row("SYNTHIE", vec![ms(0.2368, 0.0211), ms(0.5448, 0.0434)]);
        let md = t.to_markdown();
        assert!(md.contains("| SYNTHIE |"));
        assert!(md.contains("**54.48±4.34**"));
        assert!(md.contains("23.68±2.11"));
        assert!(!md.contains("**23.68"));
    }

    #[test]
    fn renders_na_cells() {
        let mut t = ResultTable::new(vec!["SP"]);
        t.push_row("COLLAB", vec![None]);
        assert!(t.to_markdown().contains("N/A"));
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "cell/method count mismatch")]
    fn wrong_cell_count_panics() {
        let mut t = ResultTable::new(vec!["A", "B"]);
        t.push_row("X", vec![ms(0.5, 0.0)]);
    }

    #[test]
    fn series_rendering() {
        let md = series_markdown(
            "Fig 5",
            "r",
            &[("DEEPMAP-SP".into(), vec![0.27, 0.54])],
            &[1.0, 2.0],
        );
        assert!(md.contains("### Fig 5"));
        assert!(md.contains("| 1 | 27.00 |"));
        assert!(md.contains("| 2 | 54.00 |"));
    }
}
