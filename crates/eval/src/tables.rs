//! Markdown rendering of result tables in the paper's layout.

use crate::cv::CvSummary;
use crate::metrics::MeanStd;

/// One table cell: an optional accuracy plus an optional annotation.
///
/// The annotation carries degradation info — a cell whose CV run lost
/// folds to crashes renders as `54.48±4.34 (3/10 folds)` instead of
/// pretending the measurement is as trustworthy as its neighbours.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Cell {
    /// Accuracy mean ± std, `None` for no measurement.
    pub value: Option<MeanStd>,
    /// Annotation rendered in parentheses after the value.
    pub note: Option<String>,
}

impl Cell {
    /// A cell with no annotation.
    pub fn new(value: Option<MeanStd>) -> Cell {
        Cell { value, note: None }
    }

    /// Builds the cell for a CV run, annotating it when folds failed:
    /// `n/k folds` for a partial run, `N/A (0/k folds)` when every fold
    /// crashed.
    pub fn from_summary(summary: &CvSummary) -> Cell {
        let completed = summary.folds_completed();
        if summary.is_complete() {
            Cell::new(Some(summary.accuracy))
        } else {
            Cell {
                value: (completed > 0).then_some(summary.accuracy),
                note: Some(format!("{completed}/{} folds", summary.folds_total)),
            }
        }
    }

    fn render(&self, bold: bool) -> String {
        let base = match &self.value {
            Some(v) if bold => format!("**{}**", v.as_percent()),
            Some(v) => v.as_percent(),
            None => "N/A".to_string(),
        };
        match &self.note {
            Some(note) => format!("{base} ({note})"),
            None => base,
        }
    }
}

impl From<Option<MeanStd>> for Cell {
    fn from(value: Option<MeanStd>) -> Cell {
        Cell::new(value)
    }
}

impl From<MeanStd> for Cell {
    fn from(value: MeanStd) -> Cell {
        Cell::new(Some(value))
    }
}

/// A result table: datasets down the rows, methods across the columns,
/// accuracy cells.
#[derive(Debug, Clone, Default)]
pub struct ResultTable {
    methods: Vec<String>,
    rows: Vec<(String, Vec<Cell>)>,
}

impl ResultTable {
    /// New table with the given method columns.
    pub fn new<S: Into<String>>(methods: Vec<S>) -> Self {
        ResultTable {
            methods: methods.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a dataset row; `cells` align with the method columns
    /// (`None` renders as `N/A`, as the paper prints for SP on COLLAB).
    ///
    /// # Panics
    /// Panics when the cell count does not match the method count.
    pub fn push_row<S: Into<String>>(&mut self, dataset: S, cells: Vec<Option<MeanStd>>) {
        self.push_cells(dataset, cells.into_iter().map(Cell::new).collect());
    }

    /// Appends a dataset row of annotated [`Cell`]s.
    ///
    /// # Panics
    /// Panics when the cell count does not match the method count.
    pub fn push_cells<S: Into<String>>(&mut self, dataset: S, cells: Vec<Cell>) {
        assert_eq!(
            cells.len(),
            self.methods.len(),
            "cell/method count mismatch"
        );
        self.rows.push((dataset.into(), cells));
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as GitHub-flavoured markdown, bolding the best
    /// cell per row (the paper bolds winners).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| Dataset |");
        for m in &self.methods {
            out.push_str(&format!(" {m} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.methods {
            out.push_str("---|");
        }
        out.push('\n');
        for (dataset, cells) in &self.rows {
            let best = cells
                .iter()
                .filter_map(|c| c.value)
                .map(|c| c.mean)
                .fold(f64::NEG_INFINITY, f64::max);
            out.push_str(&format!("| {dataset} |"));
            for cell in cells {
                let bold = cell
                    .value
                    .map(|v| (v.mean - best).abs() < 1e-12)
                    .unwrap_or(false);
                out.push_str(&format!(" {} |", cell.render(bold)));
            }
            out.push('\n');
        }
        out
    }
}

/// Renders a simple two-column series (e.g. a figure's x/y data) as
/// markdown, for the figure-reproduction binaries.
pub fn series_markdown(
    title: &str,
    x_label: &str,
    series: &[(String, Vec<f64>)],
    xs: &[f64],
) -> String {
    let mut out = format!("### {title}\n\n| {x_label} |");
    for (name, _) in series {
        out.push_str(&format!(" {name} |"));
    }
    out.push_str("\n|---|");
    for _ in series {
        out.push_str("---|");
    }
    out.push('\n');
    for (i, x) in xs.iter().enumerate() {
        out.push_str(&format!("| {x:.0} |"));
        for (_, ys) in series {
            match ys.get(i) {
                Some(y) => out.push_str(&format!(" {:.2} |", y * 100.0)),
                None => out.push_str(" - |"),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cv::FoldFailure;

    fn ms(mean: f64, std: f64) -> Option<MeanStd> {
        Some(MeanStd { mean, std })
    }

    #[test]
    fn renders_markdown_with_bold_winner() {
        let mut t = ResultTable::new(vec!["GK", "DEEPMAP-GK"]);
        t.push_row("SYNTHIE", vec![ms(0.2368, 0.0211), ms(0.5448, 0.0434)]);
        let md = t.to_markdown();
        assert!(md.contains("| SYNTHIE |"));
        assert!(md.contains("**54.48±4.34**"));
        assert!(md.contains("23.68±2.11"));
        assert!(!md.contains("**23.68"));
    }

    #[test]
    fn renders_na_cells() {
        let mut t = ResultTable::new(vec!["SP"]);
        t.push_row("COLLAB", vec![None]);
        assert!(t.to_markdown().contains("N/A"));
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "cell/method count mismatch")]
    fn wrong_cell_count_panics() {
        let mut t = ResultTable::new(vec!["A", "B"]);
        t.push_row("X", vec![ms(0.5, 0.0)]);
    }

    #[test]
    fn degraded_cell_annotated_with_fold_count() {
        let partial = CvSummary {
            accuracy: MeanStd {
                mean: 0.5448,
                std: 0.0434,
            },
            fold_accuracies: vec![0.5; 3],
            best_epoch: Some(4),
            mean_epoch_seconds: 0.1,
            folds_total: 10,
            failures: (3..10)
                .map(|fold| FoldFailure {
                    fold,
                    message: "crash".into(),
                })
                .collect(),
        };
        let cell = Cell::from_summary(&partial);
        let mut t = ResultTable::new(vec!["DEEPMAP-GK"]);
        t.push_cells("SYNTHIE", vec![cell]);
        let md = t.to_markdown();
        assert!(md.contains("54.48±4.34** (3/10 folds)"), "{md}");
    }

    #[test]
    fn all_folds_failed_renders_na_with_note() {
        let dead = CvSummary {
            accuracy: MeanStd::of(&[]),
            fold_accuracies: vec![],
            best_epoch: None,
            mean_epoch_seconds: 0.0,
            folds_total: 10,
            failures: (0..10)
                .map(|fold| FoldFailure {
                    fold,
                    message: "crash".into(),
                })
                .collect(),
        };
        let cell = Cell::from_summary(&dead);
        assert_eq!(cell.value, None);
        assert_eq!(cell.render(false), "N/A (0/10 folds)");
    }

    #[test]
    fn clean_summary_has_no_note() {
        let clean = CvSummary {
            accuracy: MeanStd {
                mean: 0.9,
                std: 0.01,
            },
            fold_accuracies: vec![0.9; 10],
            best_epoch: Some(1),
            mean_epoch_seconds: 0.1,
            folds_total: 10,
            failures: vec![],
        };
        assert_eq!(
            Cell::from_summary(&clean),
            Cell::new(Some(MeanStd {
                mean: 0.9,
                std: 0.01
            }))
        );
    }

    #[test]
    fn series_rendering() {
        let md = series_markdown(
            "Fig 5",
            "r",
            &[("DEEPMAP-SP".into(), vec![0.27, 0.54])],
            &[1.0, 2.0],
        );
        assert!(md.contains("### Fig 5"));
        assert!(md.contains("| 1 | 27.00 |"));
        assert!(md.contains("| 2 | 54.00 |"));
    }
}
