#!/bin/bash
# Regenerates every table and figure of the paper at CPU-tractable scale.
# Results land in results/*.md (stdout) and results/*.log (progress).
set -u
BIN=target/release
run() {
  name=$1; shift
  echo "=== $name: $* ==="
  local start=$SECONDS
  "$BIN/$name" "$@" > "results/$name.md" 2> "results/$name.log"
  echo "--- $name done (exit $?, $((SECONDS - start))s) ---"
}
run table1_datasets --scale 1.0
run fig6_representation --scale 1.0 --max-graphs 80 --epochs 60
run fig7_baselines_power --scale 1.0 --max-graphs 80 --epochs 60
run fig5_sensitivity --scale 1.0 --max-graphs 60 --epochs 40 --folds 3
run table2_kernels_vs_deepmap --scale 1.0 --max-graphs 100 --epochs 25 --folds 5
run table5_runtime --scale 1.0 --max-graphs 80 --epochs 5 --folds 2
run table3_sota --scale 1.0 --max-graphs 80 --epochs 20 --folds 3
run table4_gnn_featmaps --scale 1.0 --max-graphs 80 --epochs 20 --folds 3
echo "ALL EXPERIMENTS COMPLETE"
