#!/bin/bash
set -u
BIN=target/release
run() {
  name=$1; shift
  echo "=== $name: $* ==="
  local start=$SECONDS
  "$BIN/$name" "$@" > "results/$name.md" 2> "results/$name.log"
  echo "--- $name done (exit $?, $((SECONDS - start))s) ---"
}
run table2_kernels_vs_deepmap --scale 1.0 --max-graphs 100 --epochs 25 --folds 5
run table5_runtime --scale 1.0 --max-graphs 80 --epochs 5 --folds 2
run table3_sota --scale 1.0 --max-graphs 80 --epochs 20 --folds 3
run table4_gnn_featmaps --scale 1.0 --max-graphs 80 --epochs 20 --folds 3
echo "ALL TABLES COMPLETE"
