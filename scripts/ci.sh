#!/bin/bash
# Tier-1 CI gate: build, full test suite, lints.
#
# The test suite includes the fault-injection paths — the NaN-poisoned fold
# (`injected_divergence_retries_with_halved_lr` in deepmap-core), the
# panicking-fold isolation tests in deepmap-eval, and the kill/resume
# journal round trip in deepmap-bench — so divergence recovery and
# checkpoint/resume are exercised on every run, not just at paper scale.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== fmt ==="
cargo fmt --all -- --check

echo "=== build (release) ==="
cargo build --release --workspace

echo "=== tests (DEEPMAP_THREADS=1) ==="
# The determinism contract says results are bit-identical at any pool
# size, so the whole suite runs twice: once serial, once with 4 workers.
DEEPMAP_THREADS=1 cargo test -q --workspace

echo "=== tests (DEEPMAP_THREADS=4) ==="
DEEPMAP_THREADS=4 cargo test -q --workspace

echo "=== clippy ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== trace smoke ==="
# One tiny Table 5 cell with span tracing on: the run must emit a JSONL
# trace whose every line parses and which contains the top-level pipeline
# stage spans (alignment, receptive field, feature extraction, assembly)
# plus training epochs. trace_check exits non-zero otherwise. The stage
# breakdown artifact must land next to it.
rm -f results/TRACE_pipeline.jsonl results/BENCH_pipeline_stages.json
DEEPMAP_TRACE=spans cargo run --release -p deepmap-bench --bin table5_runtime -- --smoke
cargo run --release -p deepmap-bench --bin trace_check -- results/TRACE_pipeline.jsonl
test -s results/BENCH_pipeline_stages.json
grep -q '"stage": *"pipeline.alignment"' results/BENCH_pipeline_stages.json

echo "=== serve smoke ==="
# serve_throughput --smoke trains a toy model, round-trips a bundle through
# disk, drives the inference server at three concurrency levels, and exits
# non-zero unless the JSON report it wrote parses back with every required
# field. The extra checks here assert the artifact actually landed on disk.
rm -f results/BENCH_serve.json
cargo run --release -p deepmap-bench --bin serve_throughput -- --smoke
test -s results/BENCH_serve.json
grep -q '"bench": *"serve_throughput"' results/BENCH_serve.json
grep -q '"levels"' results/BENCH_serve.json

echo "=== parallel scaling smoke ==="
# parallel_scaling --smoke sweeps the shared pool over 1/2/4/8 threads,
# re-asserts bit-identical weights and predictions at every size, and
# exits non-zero unless the JSON report parses back with every required
# field (including available_parallelism, so 1-core runners are legible,
# and the single-thread kernel GFLOP/s section).
rm -f results/BENCH_parallel.json
cargo run --release -p deepmap-bench --bin parallel_scaling -- --smoke
test -s results/BENCH_parallel.json
grep -q '"bench": *"parallel_scaling"' results/BENCH_parallel.json
grep -q '"deterministic": *true' results/BENCH_parallel.json
grep -q '"available_parallelism"' results/BENCH_parallel.json
grep -q '"kernels"' results/BENCH_parallel.json

echo "=== quantized inference smoke ==="
# quant_bench --smoke benches the scalar/SIMD/int8 kernel tiers and the
# f32-vs-int8 predictor, re-verifies the vectorized matmul is bit-identical
# to the naive reference, and exits non-zero unless f32/int8 prediction
# agreement clears the 0.9 gate and the SIMD kernel is at least as fast as
# the scalar reference.
rm -f results/BENCH_quant.json
cargo run --release -p deepmap-bench --bin quant_bench -- --smoke
test -s results/BENCH_quant.json
grep -q '"bench": *"quant_bench"' results/BENCH_quant.json
grep -q '"agreement_gate"' results/BENCH_quant.json
grep -q '"int8_weight_bytes"' results/BENCH_quant.json

echo "=== serve chaos smoke ==="
# The chaos suite runs the inference server under deterministic fault
# injection (worker panics, injected latency, dropped replies): every
# accepted request must resolve — success or typed error, never a hang —
# replicas must respawn within the restart budget, and the circuit breaker
# must trip on an exhausted budget and recover through its cool-down probe.
# The feature-gated code also gets its own clippy pass, since the default
# workspace lint run never compiles it.
cargo clippy -p deepmap-serve -p deepmap-router -p deepmap-lifecycle -p deepmap-net -p deepmap-bench --features fault-inject --all-targets -- -D warnings
cargo test -q --release -p deepmap-serve --features fault-inject

echo "=== net smoke ==="
# The TCP front end, end to end on an ephemeral loopback port: serve_net
# --smoke drives healthy round-trips over real sockets, a starved server
# that must reject with typed Busy errors, and a seeded burst of hostile
# frames (bad magic/version/type, oversized, truncated, garbage bodies).
# It exits non-zero unless every hostile frame was answered with an error
# frame, the server kept serving afterwards, and shutdown was fully clean
# (zero handler panics, zero force-closed sockets, every accepted
# connection closed — i.e. zero leaked threads).
rm -f results/BENCH_net.json
cargo run --release -p deepmap-bench --bin serve_net -- --smoke
test -s results/BENCH_net.json
grep -q '"bench": *"serve_net"' results/BENCH_net.json
grep -q '"torture_survived": *true' results/BENCH_net.json
grep -q '"clean_shutdown": *true' results/BENCH_net.json
# serve_net's trace section pulls a TraceDump over the wire and exits
# non-zero unless its chosen trace id was adopted, every record's stage
# stamps are monotone, and the planted shed anomaly carries its cause;
# the greps pin the recorded verdicts.
grep -q '"chosen_id_seen": *true' results/BENCH_net.json
grep -q '"trace_monotonic": *true' results/BENCH_net.json
grep -q '"anomaly_causes_ok": *true' results/BENCH_net.json
# The poison-pill suite proves per-connection panic isolation: a detonated
# handler takes exactly its own connection, never the acceptor.
cargo test -q --release -p deepmap-net --features fault-inject

echo "=== router smoke ==="
# Multi-tenancy end to end: router_bench --smoke parks one and then four
# named bundles behind a single port, mixes traffic across them by wire
# name, and hot-swaps one model's weights twice while four client threads
# hammer it. It exits non-zero unless zero requests failed across the
# swaps, every retired replica pool was joined (pools_joined ==
# pools_retired, pools_leaked == 0), and shutdown was fully clean. The
# per-tenant fault-isolation suite (one poisoned pool trips only its own
# breaker while the sibling serves) rides the feature-gated test run.
rm -f results/BENCH_router.json
cargo run --release -p deepmap-bench --bin router_bench -- --smoke
test -s results/BENCH_router.json
grep -q '"bench": *"router_bench"' results/BENCH_router.json
grep -q '"failed_requests": *0' results/BENCH_router.json
grep -q '"pools_leaked": *0' results/BENCH_router.json
grep -q '"clean_shutdown": *true' results/BENCH_router.json
cargo test -q --release -p deepmap-router --features fault-inject

echo "=== resilience bench smoke ==="
# resilience --smoke measures healthy vs chaos p50/p99, replays the chaos
# run to prove the fault plan is deterministic, and walks the breaker
# through trip/fast-fail/probe/recover. It exits non-zero if any request
# hangs; the greps assert the report landed with the zero-hang contract.
rm -f results/BENCH_resilience.json
cargo run --release -p deepmap-bench --features fault-inject --bin resilience -- --smoke
test -s results/BENCH_resilience.json
grep -q '"bench": *"resilience"' results/BENCH_resilience.json
grep -q '"hung_requests": *0' results/BENCH_resilience.json
grep -q '"deterministic": *true' results/BENCH_resilience.json

echo "=== lifecycle bench smoke ==="
# lifecycle_bench --smoke walks a candidate bundle through shadow → canary
# → live over the wire while client threads hammer the server, forces a
# canary that panics mid-slice to auto-roll-back, and kill-9s a controller
# mid-rollout to prove the CRC journal salvages its torn tail and resumes.
# It exits non-zero unless zero client requests failed across both load
# scenarios; the greps pin the recorded verdicts. The rollout state-machine
# suite (including the chaos rollback test) rides the feature-gated run.
rm -f results/BENCH_lifecycle.json
cargo run --release -p deepmap-bench --features fault-inject --bin lifecycle_bench -- --smoke
test -s results/BENCH_lifecycle.json
grep -q '"bench": *"lifecycle"' results/BENCH_lifecycle.json
grep -q '"failed_requests": *0' results/BENCH_lifecycle.json
grep -q '"rolled_back": *true' results/BENCH_lifecycle.json
grep -q '"journal_recovered": *true' results/BENCH_lifecycle.json
grep -q '"torn_tail_salvaged": *true' results/BENCH_lifecycle.json
cargo test -q --release -p deepmap-lifecycle --features fault-inject

echo "=== request tracing smoke ==="
# trace_bench interleaves the same request stream through a traced and an
# untraced engine and exits non-zero unless attribution costs at most 5%
# at p50, every traced request landed in the flight recorder with
# monotone stage stamps, and the untraced engine recorded nothing.
rm -f results/BENCH_trace.json
cargo run --release -p deepmap-bench --bin trace_bench -- --smoke
test -s results/BENCH_trace.json
grep -q '"bench": *"trace_bench"' results/BENCH_trace.json
grep -q '"trace_monotonic": *true' results/BENCH_trace.json
grep -q '"overhead_within_budget": *true' results/BENCH_trace.json

echo "CI GATE PASSED"
