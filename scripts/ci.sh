#!/bin/bash
# Tier-1 CI gate: build, full test suite, lints.
#
# The test suite includes the fault-injection paths — the NaN-poisoned fold
# (`injected_divergence_retries_with_halved_lr` in deepmap-core), the
# panicking-fold isolation tests in deepmap-eval, and the kill/resume
# journal round trip in deepmap-bench — so divergence recovery and
# checkpoint/resume are exercised on every run, not just at paper scale.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== build (release) ==="
cargo build --release --workspace

echo "=== tests ==="
cargo test -q --workspace

echo "=== clippy ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI GATE PASSED"
