#!/bin/bash
# Tier-1 CI gate: build, full test suite, lints.
#
# The test suite includes the fault-injection paths — the NaN-poisoned fold
# (`injected_divergence_retries_with_halved_lr` in deepmap-core), the
# panicking-fold isolation tests in deepmap-eval, and the kill/resume
# journal round trip in deepmap-bench — so divergence recovery and
# checkpoint/resume are exercised on every run, not just at paper scale.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== fmt ==="
cargo fmt --all -- --check

echo "=== build (release) ==="
cargo build --release --workspace

echo "=== tests (DEEPMAP_THREADS=1) ==="
# The determinism contract says results are bit-identical at any pool
# size, so the whole suite runs twice: once serial, once with 4 workers.
DEEPMAP_THREADS=1 cargo test -q --workspace

echo "=== tests (DEEPMAP_THREADS=4) ==="
DEEPMAP_THREADS=4 cargo test -q --workspace

echo "=== clippy ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== trace smoke ==="
# One tiny Table 5 cell with span tracing on: the run must emit a JSONL
# trace whose every line parses and which contains the top-level pipeline
# stage spans (alignment, receptive field, feature extraction, assembly)
# plus training epochs. trace_check exits non-zero otherwise. The stage
# breakdown artifact must land next to it.
rm -f results/TRACE_pipeline.jsonl results/BENCH_pipeline_stages.json
DEEPMAP_TRACE=spans cargo run --release -p deepmap-bench --bin table5_runtime -- --smoke
cargo run --release -p deepmap-bench --bin trace_check -- results/TRACE_pipeline.jsonl
test -s results/BENCH_pipeline_stages.json
grep -q '"stage": *"pipeline.alignment"' results/BENCH_pipeline_stages.json

echo "=== serve smoke ==="
# serve_throughput --smoke trains a toy model, round-trips a bundle through
# disk, drives the inference server at three concurrency levels, and exits
# non-zero unless the JSON report it wrote parses back with every required
# field. The extra checks here assert the artifact actually landed on disk.
rm -f results/BENCH_serve.json
cargo run --release -p deepmap-bench --bin serve_throughput -- --smoke
test -s results/BENCH_serve.json
grep -q '"bench": *"serve_throughput"' results/BENCH_serve.json
grep -q '"levels"' results/BENCH_serve.json

echo "=== parallel scaling smoke ==="
# parallel_scaling --smoke sweeps the shared pool over 1/2/4/8 threads,
# re-asserts bit-identical weights and predictions at every size, and
# exits non-zero unless the JSON report parses back with every required
# field (including available_parallelism, so 1-core runners are legible).
rm -f results/BENCH_parallel.json
cargo run --release -p deepmap-bench --bin parallel_scaling -- --smoke
test -s results/BENCH_parallel.json
grep -q '"bench": *"parallel_scaling"' results/BENCH_parallel.json
grep -q '"deterministic": *true' results/BENCH_parallel.json
grep -q '"available_parallelism"' results/BENCH_parallel.json

echo "CI GATE PASSED"
