//! Integration tests for the paper's stated invariants and theorems.

use deepmap_repro::deepmap::assemble::{assemble_dataset, AssembleConfig};
use deepmap_repro::deepmap::model::{build_deepmap_model, ModelConfig};
use deepmap_repro::graph::builder::graph_from_edges;
use deepmap_repro::graph::Graph;
use deepmap_repro::kernels::{graph_feature_maps, vertex_feature_maps, FeatureKind};
use deepmap_repro::nn::layers::Mode;

/// Two isomorphic labeled graphs (a relabeled star with a tail).
fn isomorphic_pair() -> (Graph, Graph) {
    // Graph A: edges on ids 0..5.
    let a = graph_from_edges(
        6,
        &[(0, 1), (0, 2), (0, 3), (3, 4), (4, 5)],
        Some(&[2, 1, 1, 3, 1, 2]),
    )
    .unwrap();
    // Graph B: the same graph under the permutation v -> 5 - v.
    let b = graph_from_edges(
        6,
        &[(5, 4), (5, 3), (5, 2), (2, 1), (1, 0)],
        Some(&[2, 1, 3, 1, 1, 2]),
    )
    .unwrap();
    (a, b)
}

/// Theorem 1: isomorphic graphs have identical deep graph feature maps
/// after the summation layer. We verify the full pipeline: identical CNN
/// outputs for deterministic (WL / SP) vertex feature maps.
#[test]
fn theorem1_isomorphic_graphs_same_output() {
    let (a, b) = isomorphic_pair();
    for kind in [
        FeatureKind::WlSubtree { iterations: 2 },
        FeatureKind::ShortestPath,
    ] {
        let graphs = vec![a.clone(), b.clone()];
        let features = vertex_feature_maps(&graphs, kind, 0);
        let assembled = assemble_dataset(&graphs, &features, &AssembleConfig::default());
        let mut model = build_deepmap_model(&ModelConfig::paper(
            assembled.m,
            assembled.r,
            assembled.w,
            2,
            42,
        ));
        let out_a = model.forward(&assembled.inputs[0], Mode::Eval);
        let out_b = model.forward(&assembled.inputs[1], Mode::Eval);
        for (x, y) in out_a.as_slice().iter().zip(out_b.as_slice()) {
            assert!(
                (x - y).abs() < 1e-4,
                "{kind:?}: isomorphic graphs diverged: {x} vs {y}"
            );
        }
    }
}

/// The caveat after Theorem 1: with *sampled* graphlet features the outputs
/// need not be identical — but the WL/SP guarantee must not be weakened by
/// the assembly (checked above), while GK merely stays finite.
#[test]
fn sampled_graphlets_still_finite() {
    let (a, b) = isomorphic_pair();
    let graphs = vec![a, b];
    let features = vertex_feature_maps(
        &graphs,
        FeatureKind::Graphlet {
            size: 3,
            samples: 5,
        },
        7,
    );
    let assembled = assemble_dataset(&graphs, &features, &AssembleConfig::default());
    let mut model = build_deepmap_model(&ModelConfig::paper(
        assembled.m.max(1),
        assembled.r,
        assembled.w,
        2,
        1,
    ));
    for input in &assembled.inputs {
        let out = model.forward(input, Mode::Eval);
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }
}

/// Eq. 7: the graph feature map is the sum of the vertex feature maps
/// (exact for WL; SP sums to twice the unordered-pair map — same support).
#[test]
fn eq7_graph_map_is_vertex_map_sum() {
    let (a, b) = isomorphic_pair();
    let graphs = vec![a, b];
    let vmaps = vertex_feature_maps(&graphs, FeatureKind::WlSubtree { iterations: 3 }, 0);
    let direct = graph_feature_maps(&graphs, FeatureKind::WlSubtree { iterations: 3 }, 0);
    let summed = vmaps.sum_per_graph();
    assert_eq!(summed, direct);
}

/// Permutation invariance of the summation readout: shuffling the order in
/// which vertices enter the input tensor (i.e., permuting receptive-field
/// blocks) does not change the model output.
#[test]
fn sum_readout_is_block_permutation_invariant() {
    let (a, _) = isomorphic_pair();
    let graphs = vec![a];
    let features = vertex_feature_maps(&graphs, FeatureKind::WlSubtree { iterations: 2 }, 0);
    let config = AssembleConfig {
        r: 3,
        ..Default::default()
    };
    let assembled = assemble_dataset(&graphs, &features, &config);
    let input = &assembled.inputs[0];
    // Swap the first two receptive-field blocks (rows 0..3 and 3..6).
    let mut swapped = input.clone();
    for row in 0..3 {
        for col in 0..input.cols() {
            let tmp = swapped.get(row, col);
            swapped.set(row, col, swapped.get(row + 3, col));
            swapped.set(row + 3, col, tmp);
        }
    }
    let mut model = build_deepmap_model(&ModelConfig::paper(
        assembled.m,
        assembled.r,
        assembled.w,
        2,
        5,
    ));
    let out1 = model.forward(input, Mode::Eval);
    let out2 = model.forward(&swapped, Mode::Eval);
    for (x, y) in out1.as_slice().iter().zip(out2.as_slice()) {
        assert!((x - y).abs() < 1e-4);
    }
}

/// Dummy padding must not contribute: appending all-zero receptive fields
/// (what a smaller graph gets) leaves the output unchanged.
#[test]
fn dummy_padding_contributes_nothing() {
    let (a, _) = isomorphic_pair();
    let graphs = vec![a];
    let features = vertex_feature_maps(&graphs, FeatureKind::ShortestPath, 0);
    let config = AssembleConfig {
        r: 2,
        ..Default::default()
    };
    let assembled = assemble_dataset(&graphs, &features, &config);
    let input = &assembled.inputs[0];
    // Extend with 3 extra dummy fields (6 zero rows).
    let mut extended = deepmap_repro::nn::Matrix::zeros(input.rows() + 6, input.cols());
    for r in 0..input.rows() {
        extended.row_mut(r).copy_from_slice(input.row(r));
    }
    let mut model = build_deepmap_model(&ModelConfig::paper(assembled.m, 2, assembled.w + 3, 2, 9));
    let out1 = model.forward(input, Mode::Eval);
    let out2 = model.forward(&extended, Mode::Eval);
    // SumPool ignores zero rows only if conv(0) + bias relu'd rows sum the
    // same constant per dummy field; the paper guarantees this by zeroing
    // dummy *features*. With bias terms the conv of a zero row is the bias,
    // so outputs differ by a constant pattern — the invariance the paper
    // relies on is at the *feature map* level: zero vertex features carry
    // no substructure mass. Verify that at least the prediction ordering is
    // stable.
    assert_eq!(
        out1.argmax_row(0),
        out2.argmax_row(0),
        "padding flipped the prediction"
    );
}
