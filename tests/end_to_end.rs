//! End-to-end integration tests spanning the whole workspace:
//! dataset generation → feature maps → alignment/receptive fields →
//! CNN/SVM training → cross-validated accuracy.

use deepmap_repro::datasets::generate;
use deepmap_repro::deepmap::{DeepMap, DeepMapConfig, Readout};
use deepmap_repro::eval::cv::{cross_validate_epochs, cross_validate_svm, FoldCurve};
use deepmap_repro::eval::MeanStd;
use deepmap_repro::kernels::{kernel_matrix, FeatureKind};
use deepmap_repro::nn::train::TrainConfig;
use deepmap_repro::svm::PAPER_C_GRID;

fn quick_config(kind: FeatureKind, epochs: usize, seed: u64) -> DeepMapConfig {
    DeepMapConfig {
        r: 3,
        max_feature_dim: Some(64),
        train: TrainConfig {
            epochs,
            batch_size: 16,
            learning_rate: 0.01,
            seed,
        },
        ..DeepMapConfig::paper(kind)
    }
}

#[test]
fn deepmap_cv_on_simulated_benchmark_beats_chance() {
    let ds = generate("PTC_MM", 0.12, 3).expect("registered");
    let pipeline = DeepMap::new(quick_config(
        FeatureKind::WlSubtree { iterations: 2 },
        12,
        3,
    ));
    let prepared = pipeline.prepare(&ds.graphs, &ds.labels);
    let summary = cross_validate_epochs(&ds.labels, 3, 3, 1, |fold, train, test| {
        let mut cfg = *pipeline.config();
        cfg.seed = fold as u64;
        cfg.train.seed = fold as u64;
        let result = DeepMap::new(cfg).fit_split(&prepared, train, test);
        FoldCurve {
            test_accuracy: result
                .history
                .iter()
                .map(|e| e.eval_accuracy.unwrap_or(0.0))
                .collect(),
            epoch_seconds: 0.0,
            retries: 0,
        }
    });
    assert!(
        summary.accuracy.mean > 0.55,
        "DeepMap should beat chance on a separable benchmark: {}",
        summary.accuracy
    );
    assert_eq!(summary.fold_accuracies.len(), 3);
    assert!(summary.best_epoch.is_some());
}

#[test]
fn kernel_svm_cv_on_simulated_benchmark() {
    let ds = generate("KKI", 0.4, 5).expect("registered");
    let gram = kernel_matrix(&ds.graphs, FeatureKind::WlSubtree { iterations: 2 }, 5);
    let summary = cross_validate_svm(&gram, &ds.labels, ds.n_classes, 4, &PAPER_C_GRID, 5);
    assert!(
        summary.accuracy.mean > 0.5,
        "WL-SVM should beat chance on community-structured classes: {}",
        summary.accuracy
    );
}

#[test]
fn all_three_feature_kinds_flow_end_to_end() {
    let ds = generate("PTC_FR", 0.06, 9).expect("registered");
    for kind in [
        FeatureKind::Graphlet {
            size: 3,
            samples: 8,
        },
        FeatureKind::ShortestPath,
        FeatureKind::WlSubtree { iterations: 1 },
    ] {
        let pipeline = DeepMap::new(quick_config(kind, 4, 9));
        let prepared = pipeline.prepare(&ds.graphs, &ds.labels);
        let n = prepared.samples.len();
        let split = n * 3 / 4;
        let train: Vec<usize> = (0..split).collect();
        let test: Vec<usize> = (split..n).collect();
        let result = pipeline.fit_split(&prepared, &train, &test);
        assert_eq!(result.history.len(), 4);
        assert!(result.history.iter().all(|e| e.loss.is_finite()));
        assert!((0.0..=1.0).contains(&result.test_accuracy), "{kind:?}");
    }
}

#[test]
fn concat_readout_trains() {
    let ds = generate("PTC_FM", 0.05, 4).expect("registered");
    let mut config = quick_config(FeatureKind::WlSubtree { iterations: 1 }, 4, 4);
    config.readout = Readout::Concat;
    let pipeline = DeepMap::new(config);
    let prepared = pipeline.prepare(&ds.graphs, &ds.labels);
    let all: Vec<usize> = (0..prepared.samples.len()).collect();
    let result = pipeline.fit_split(&prepared, &all, &all);
    assert!(result.history.iter().all(|e| e.loss.is_finite()));
}

#[test]
fn deterministic_cv_results_under_fixed_seed() {
    let ds = generate("PTC_MR", 0.05, 8).expect("registered");
    let run = || {
        let pipeline = DeepMap::new(quick_config(FeatureKind::ShortestPath, 5, 8));
        let prepared = pipeline.prepare(&ds.graphs, &ds.labels);
        cross_validate_epochs(&ds.labels, 3, 8, 1, |fold, train, test| {
            let mut cfg = *pipeline.config();
            cfg.seed = fold as u64;
            cfg.train.seed = fold as u64;
            let result = DeepMap::new(cfg).fit_split(&prepared, train, test);
            FoldCurve {
                test_accuracy: result
                    .history
                    .iter()
                    .map(|e| e.eval_accuracy.unwrap_or(0.0))
                    .collect(),
                epoch_seconds: 0.0,
                retries: 0,
            }
        })
        .fold_accuracies
    };
    assert_eq!(run(), run());
}

#[test]
fn mean_std_matches_cv_folds() {
    let values = [0.5, 0.6, 0.7];
    let agg = MeanStd::of(&values);
    assert!((agg.mean - 0.6).abs() < 1e-12);
    assert!(agg.std > 0.0);
}
