//! Molecule classification: the paper's motivating bioinformatics scenario.
//!
//! ```text
//! cargo run --release --example molecule_classification
//! ```
//!
//! Uses the simulated PTC_MR benchmark (carcinogenicity of chemical
//! compounds on male rats) and compares a flat WL-subtree kernel SVM — the
//! classical R-convolution approach — against DEEPMAP-WL under the same
//! 5-fold cross-validation, demonstrating the paper's central claim on a
//! molecule-shaped workload.

use deepmap_repro::datasets::generate;
use deepmap_repro::deepmap::{DeepMap, DeepMapConfig};
use deepmap_repro::eval::cv::{cross_validate_epochs, cross_validate_svm, FoldCurve};
use deepmap_repro::kernels::{kernel_matrix, FeatureKind};
use deepmap_repro::nn::train::TrainConfig;
use deepmap_repro::svm::PAPER_C_GRID;

fn main() {
    let seed = 7;
    let folds = 5;
    let ds = generate("PTC_MR", 0.25, seed).expect("PTC_MR is a registered benchmark");
    println!(
        "PTC_MR (simulated): {} molecules, {} classes, avg {:.1} atoms",
        ds.len(),
        ds.n_classes,
        ds.graphs.iter().map(|g| g.n_vertices()).sum::<usize>() as f64 / ds.len() as f64
    );

    // Classical baseline: WL subtree kernel + C-SVM, C tuned per fold.
    let kind = FeatureKind::WlSubtree { iterations: 3 };
    let gram = kernel_matrix(&ds.graphs, kind, seed);
    let flat = cross_validate_svm(&gram, &ds.labels, ds.n_classes, folds, &PAPER_C_GRID, seed);
    println!("WL kernel + SVM:  {}", flat.accuracy);

    // DeepMap on the same substructure family.
    let config = DeepMapConfig {
        r: 5,
        max_feature_dim: Some(128),
        train: TrainConfig {
            epochs: 25,
            batch_size: 32,
            learning_rate: 0.01,
            seed,
        },
        ..DeepMapConfig::paper(kind)
    };
    let pipeline = DeepMap::new(config);
    let prepared = pipeline.prepare(&ds.graphs, &ds.labels);
    let deep = cross_validate_epochs(&ds.labels, folds, seed, 1, |fold, train, test| {
        let mut cfg = *pipeline.config();
        cfg.seed = seed.wrapping_add(fold as u64);
        cfg.train.seed = cfg.seed;
        let result = DeepMap::new(cfg).fit_split(&prepared, train, test);
        FoldCurve {
            test_accuracy: result
                .history
                .iter()
                .map(|e| e.eval_accuracy.unwrap_or(0.0))
                .collect(),
            epoch_seconds: 0.0,
            retries: 0,
        }
    });
    println!(
        "DEEPMAP-WL:       {}  (best epoch {:?})",
        deep.accuracy, deep.best_epoch
    );

    if deep.accuracy.mean >= flat.accuracy.mean {
        println!("→ the deep map beats its flat kernel, as in the paper's Table 2.");
    } else {
        println!("→ the flat kernel wins at this tiny scale; larger --scale runs recover the paper's ordering.");
    }
}
