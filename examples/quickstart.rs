//! Quickstart: classify cycles vs. cliques with DeepMap in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the whole pipeline: build labeled graphs, pick a vertex-feature
//! family (WL subtrees here), prepare the aligned tensors, train the Fig. 4
//! CNN on a split, and report accuracy.

use deepmap_repro::deepmap::{DeepMap, DeepMapConfig};
use deepmap_repro::graph::generators::{complete_graph, cycle_graph};
use deepmap_repro::graph::Graph;
use deepmap_repro::kernels::FeatureKind;
use deepmap_repro::nn::train::TrainConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Unlabeled benchmarks use vertex degrees as labels (paper §5.2).
fn degree_labeled(g: Graph) -> Graph {
    let labels: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
    g.with_labels(labels).expect("same vertex count")
}

fn main() {
    // 1. A tiny two-class dataset: cycles (class 0) vs cliques (class 1).
    let mut rng = StdRng::seed_from_u64(42);
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..20 {
        graphs.push(degree_labeled(cycle_graph(6 + i % 4, 0, &mut rng)));
        labels.push(0);
        graphs.push(degree_labeled(complete_graph(5 + i % 4, 0, &mut rng)));
        labels.push(1);
    }

    // 2. Configure DeepMap: WL-subtree vertex feature maps, receptive
    //    field r = 3, paper defaults elsewhere.
    let config = DeepMapConfig {
        r: 3,
        train: TrainConfig {
            epochs: 20,
            batch_size: 8,
            learning_rate: 0.01,
            seed: 1,
        },
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
    };
    let pipeline = DeepMap::new(config);

    // 3. Feature extraction + vertex alignment + receptive-field assembly.
    let prepared = pipeline.prepare(&graphs, &labels);
    println!(
        "prepared {} graphs: w = {}, feature dim m = {}, {} classes",
        prepared.samples.len(),
        prepared.w,
        prepared.m,
        prepared.n_classes
    );

    // 4. Train on the first 30 graphs, test on the last 10.
    let train_idx: Vec<usize> = (0..30).collect();
    let test_idx: Vec<usize> = (30..40).collect();
    let result = pipeline.fit_split(&prepared, &train_idx, &test_idx);

    for stats in result.history.iter().step_by(5) {
        println!(
            "epoch {:>2}: loss {:.4}, train acc {:.1}%, test acc {:.1}%",
            stats.epoch,
            stats.loss,
            stats.train_accuracy * 100.0,
            stats.eval_accuracy.unwrap_or(0.0) * 100.0
        );
    }
    println!(
        "final test accuracy: {:.1}%  (best epoch reached {:.1}%)",
        result.test_accuracy * 100.0,
        result.best_test_accuracy * 100.0
    );
    assert!(
        result.best_test_accuracy >= 0.8,
        "quickstart should separate cycles from cliques"
    );
}
