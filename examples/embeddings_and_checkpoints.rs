//! Vertex embeddings and model checkpointing.
//!
//! ```text
//! cargo run --release --example embeddings_and_checkpoints
//! ```
//!
//! Two library features beyond the paper's headline experiment:
//!
//! 1. **Vertex embeddings** (paper §7): the deep vertex feature maps that
//!    feed the summation readout are per-vertex embeddings; structurally
//!    distinct roles (protein-core vs. linker vertices) separate in that
//!    space after training.
//! 2. **Checkpointing**: trained weights round-trip through the `DMW1`
//!    binary format, so a classifier can be trained once and reused.

use deepmap_repro::datasets::generate;
use deepmap_repro::deepmap::embedding::dataset_embeddings;
use deepmap_repro::deepmap::{DeepMap, DeepMapConfig};
use deepmap_repro::kernels::FeatureKind;
use deepmap_repro::nn::persist::{load_weights, save_weights};
use deepmap_repro::nn::train::TrainConfig;

fn main() {
    let seed = 3;
    let ds = generate("ENZYMES", 0.1, seed).expect("ENZYMES registered");
    println!(
        "ENZYMES (simulated): {} proteins, {} classes",
        ds.len(),
        ds.n_classes
    );

    let pipeline = DeepMap::new(DeepMapConfig {
        r: 4,
        max_feature_dim: Some(64),
        train: TrainConfig {
            epochs: 15,
            batch_size: 16,
            learning_rate: 0.01,
            seed,
        },
        ..DeepMapConfig::paper(FeatureKind::WlSubtree { iterations: 2 })
    });
    let prepared = pipeline.prepare(&ds.graphs, &ds.labels);

    // Train on everything (we only want a representation here).
    let all: Vec<usize> = (0..ds.len()).collect();
    let mut result = pipeline.fit_split(&prepared, &all, &all);
    println!(
        "trained {} epochs; final training accuracy {:.1}%",
        result.history.len(),
        result.history.last().unwrap().train_accuracy * 100.0
    );

    // 1. Vertex embeddings: 8-dimensional deep feature map per vertex.
    let sizes: Vec<usize> = ds.graphs.iter().map(|g| g.n_vertices()).collect();
    let embeddings = dataset_embeddings(&pipeline, &mut result.model, &prepared, &sizes);
    let g0 = &embeddings[0];
    println!(
        "graph 0 embeddings: {} vertices × {} dims; first vertex = {:?}",
        g0.rows(),
        g0.cols(),
        &g0.row(0)[..4.min(g0.cols())]
    );
    // Embedding norms vary across structural roles.
    let norms: Vec<f32> = (0..g0.rows())
        .map(|v| g0.row(v).iter().map(|x| x * x).sum::<f32>().sqrt())
        .collect();
    let (min, max) = norms
        .iter()
        .fold((f32::MAX, f32::MIN), |(lo, hi), &n| (lo.min(n), hi.max(n)));
    println!("embedding norm range across graph 0: [{min:.3}, {max:.3}]");

    // 2. Checkpoint round-trip: a freshly built model disagrees with the
    //    trained one until the weights are loaded.
    let blob = save_weights(&result.model);
    println!("checkpoint size: {} bytes", blob.len());
    let mut fresh = pipeline.build_model(&prepared);
    let sample = &prepared.samples[0];
    let before = fresh.predict(&sample.input);
    load_weights(&mut fresh, &blob).expect("same architecture");
    let after = fresh.predict(&sample.input);
    let reference = result.model.predict(&sample.input);
    println!("prediction for graph 0: fresh = {before}, restored = {after}, trained = {reference}");
    assert_eq!(
        after, reference,
        "restored model must agree with the trained one"
    );
    println!("checkpoint restored the trained classifier exactly.");
}
