//! Kernel playground: inspect graph feature maps and Gram matrices.
//!
//! ```text
//! cargo run --release --example kernel_playground
//! ```
//!
//! Demonstrates the lower layers of the library without any neural
//! training: build small graphs, extract the three kinds of graph feature
//! maps (paper §3), verify Eq. 7 (graph map = sum of vertex maps), and
//! compare all six kernels — GK, SP, WL, DGK, RetGK, GNTK — on the same
//! pair of graphs.

use deepmap_repro::graph::builder::graph_from_edges;
use deepmap_repro::graph::Graph;
use deepmap_repro::kernels::dgk::{self, DgkConfig};
use deepmap_repro::kernels::gntk::{self, GntkConfig};
use deepmap_repro::kernels::retgk::{self, RetGkConfig};
use deepmap_repro::kernels::{graph_feature_maps, kernel_matrix, vertex_feature_maps, FeatureKind};

fn labeled_triangle_with_tail() -> Graph {
    // A triangle with a pendant vertex: labels are degrees.
    let g = graph_from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)], None).unwrap();
    let labels: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
    g.with_labels(labels).unwrap()
}

fn labeled_path4() -> Graph {
    let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)], None).unwrap();
    let labels: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
    g.with_labels(labels).unwrap()
}

fn main() {
    let graphs = vec![labeled_triangle_with_tail(), labeled_path4()];
    println!("two 4-vertex graphs: triangle+tail vs path\n");

    // Graph feature maps of the three kernel families (paper §3).
    for kind in [
        FeatureKind::Graphlet {
            size: 3,
            samples: 30,
        },
        FeatureKind::ShortestPath,
        FeatureKind::WlSubtree { iterations: 2 },
    ] {
        let maps = graph_feature_maps(&graphs, kind, 1);
        println!(
            "{:<3} feature maps: dims (nnz) = {} and {}; <φ(G1), φ(G2)> = {:.1}",
            kind.name(),
            maps[0].nnz(),
            maps[1].nnz(),
            maps[0].dot(&maps[1])
        );

        // Eq. 7: the graph map is the sum of the vertex maps.
        let vmaps = vertex_feature_maps(&graphs, kind, 1);
        let summed = vmaps.sum_per_graph();
        let ratio = if maps[0].total() > 0.0 {
            summed[0].total() / maps[0].total()
        } else {
            0.0
        };
        println!(
            "    Eq. 7 check: Σ_v φ(v) has total mass {:.0} (×{ratio:.0} of the graph map — SP counts each endpoint)",
            summed[0].total()
        );
    }

    // The six Gram matrices, cosine-normalised: report K(G1, G2).
    println!("\nnormalised similarity K(triangle+tail, path):");
    for kind in [
        FeatureKind::Graphlet {
            size: 3,
            samples: 30,
        },
        FeatureKind::ShortestPath,
        FeatureKind::WlSubtree { iterations: 2 },
    ] {
        let k = kernel_matrix(&graphs, kind, 1);
        println!("  {:<6} {:.4}", kind.name(), k.get(0, 1));
    }
    let k = dgk::kernel_matrix(&graphs, &DgkConfig::default());
    println!("  DGK    {:.4}", k.get(0, 1));
    let k = retgk::kernel_matrix(&graphs, &RetGkConfig::default());
    println!("  RETGK  {:.4}", k.get(0, 1));
    let k = gntk::kernel_matrix(&graphs, &GntkConfig::default());
    println!("  GNTK   {:.4}", k.get(0, 1));

    println!("\nall kernels agree the two graphs are similar-but-distinct (0 < K < 1).");
}
