//! Social-network classification: IMDB-style collaboration ego-nets.
//!
//! ```text
//! cargo run --release --example social_networks
//! ```
//!
//! The movie-collaboration benchmarks have no vertex labels; per the paper
//! (§5.2) vertex degrees serve as labels. This example runs all three
//! DeepMap variants (GK / SP / WL) on the simulated IMDB-BINARY data and
//! shows how to inspect the learned pipeline: vertex alignment, receptive
//! fields, and the per-graph input tensors.

use deepmap_repro::datasets::generate;
use deepmap_repro::deepmap::alignment::{vertex_sequence, VertexOrdering};
use deepmap_repro::deepmap::receptive_field::{receptive_field, Slot};
use deepmap_repro::deepmap::{DeepMap, DeepMapConfig};
use deepmap_repro::kernels::FeatureKind;
use deepmap_repro::nn::train::TrainConfig;

fn main() {
    let seed = 11;
    let ds = generate("IMDB-BINARY", 0.15, seed).expect("IMDB-BINARY is registered");
    println!(
        "IMDB-BINARY (simulated): {} ego networks, {} genres",
        ds.len(),
        ds.n_classes
    );

    // Peek inside the pipeline on the first ego network: the ego vertex has
    // the highest eigenvector centrality, so it leads the vertex sequence.
    let g = &ds.graphs[0];
    let seq = vertex_sequence(g, VertexOrdering::EigenvectorCentrality);
    println!(
        "graph 0: {} actors; sequence head = vertex {} (degree {} of max {})",
        g.n_vertices(),
        seq.order[0],
        g.degree(seq.order[0]),
        g.max_degree()
    );
    let field = receptive_field(g, seq.order[0], 5, &seq.score, None);
    let members: Vec<String> = field
        .iter()
        .map(|s| match s {
            Slot::Vertex(v) => format!("v{v}"),
            Slot::Dummy => "∅".to_string(),
        })
        .collect();
    println!("its receptive field (r = 5): [{}]", members.join(", "));

    // Train each variant on a fixed 80/20 split.
    let n = ds.len();
    let split = n * 4 / 5;
    let train_idx: Vec<usize> = (0..split).collect();
    let test_idx: Vec<usize> = (split..n).collect();
    for kind in [
        FeatureKind::Graphlet {
            size: 4,
            samples: 10,
        },
        FeatureKind::ShortestPath,
        FeatureKind::WlSubtree { iterations: 2 },
    ] {
        let config = DeepMapConfig {
            r: 5,
            max_feature_dim: Some(128),
            train: TrainConfig {
                epochs: 15,
                batch_size: 32,
                learning_rate: 0.01,
                seed,
            },
            ..DeepMapConfig::paper(kind)
        };
        let pipeline = DeepMap::new(config);
        let prepared = pipeline.prepare(&ds.graphs, &ds.labels);
        let result = pipeline.fit_split(&prepared, &train_idx, &test_idx);
        println!(
            "DEEPMAP-{:<3}: m = {:>3}, test accuracy {:.1}% (best {:.1}%)",
            kind.name(),
            prepared.m,
            result.test_accuracy * 100.0,
            result.best_test_accuracy * 100.0
        );
    }
}
