//! DeepMap reproduction — facade crate.
//!
//! Re-exports the workspace crates under one roof so the examples and
//! integration tests can `use deepmap_repro::…`. See the individual crates
//! for the substance:
//!
//! - [`graph`] — graph substrate (CSR graphs, BFS, APSP, centrality,
//!   generators).
//! - [`kernels`] — GK/SP/WL feature maps and the DGK/RetGK/GNTK baselines.
//! - [`nn`] — the CPU neural-network substrate.
//! - [`svm`] — SMO C-SVM on precomputed kernels.
//! - [`deepmap`] — the paper's contribution: CNNs on vertex feature maps.
//! - [`gnn`] — GIN / DGCNN / DCNN / PATCHY-SAN baselines.
//! - [`datasets`] — simulated Table-1 benchmarks.
//! - [`eval`] — cross-validation, metrics, result tables.
//! - [`serve`] — model bundles and the micro-batching inference server.
//! - [`router`] — the multi-tenant model registry: named bundles behind
//!   per-model replica pools, with zero-downtime hot reload.
//! - [`lifecycle`] — safe rollout on top of the router: shadow
//!   mirroring, policy-gated canary promotion with automatic rollback,
//!   and a crash-safe rollout journal.
//! - [`net`] — the hardened TCP front end speaking the `DMW2` wire
//!   protocol (`DMW1` clients still served), with a matching blocking
//!   client.
//! - [`obs`] — structured tracing, stage metrics, and profiling hooks.
//! - [`par`] — the shared deterministic thread pool (`DEEPMAP_THREADS`).

#![deny(missing_docs)]

pub use deepmap_core as deepmap;
pub use deepmap_datasets as datasets;
pub use deepmap_eval as eval;
pub use deepmap_gnn as gnn;
pub use deepmap_graph as graph;
pub use deepmap_kernels as kernels;
pub use deepmap_lifecycle as lifecycle;
pub use deepmap_net as net;
pub use deepmap_nn as nn;
pub use deepmap_obs as obs;
pub use deepmap_par as par;
pub use deepmap_router as router;
pub use deepmap_serve as serve;
pub use deepmap_svm as svm;
